//! LU factorization with partial pivoting, solve and explicit inverse.
//!
//! General (non-symmetric) solves are needed by the `S^{-1}K` formulation of
//! the density matrix (paper Eq. 7) and by tests cross-checking the Löwdin
//! path (Eq. 16).

use crate::matrix::Matrix;
use crate::LinalgError;

/// LU decomposition `P A = L U` with partial pivoting.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed factors: `U` on and above the diagonal, unit-`L` below.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (for determinants).
    sign: f64,
}

/// Factor a square matrix. Fails if a pivot collapses to (near) zero.
pub fn lu(a: &Matrix) -> Result<Lu, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            op: "lu",
            shape: a.shape(),
        });
    }
    let n = a.nrows();
    let mut m = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;

    for k in 0..n {
        // Find pivot in column k at or below the diagonal.
        let mut p = k;
        let mut pmax = m[(k, k)].abs();
        for i in (k + 1)..n {
            if m[(i, k)].abs() > pmax {
                pmax = m[(i, k)].abs();
                p = i;
            }
        }
        if pmax == 0.0 || !pmax.is_finite() {
            return Err(LinalgError::Singular { op: "lu", index: k });
        }
        if p != k {
            for j in 0..n {
                let tmp = m[(k, j)];
                m[(k, j)] = m[(p, j)];
                m[(p, j)] = tmp;
            }
            perm.swap(k, p);
            sign = -sign;
        }
        let pivot = m[(k, k)];
        for i in (k + 1)..n {
            let factor = m[(i, k)] / pivot;
            m[(i, k)] = factor;
            if factor != 0.0 {
                for j in (k + 1)..n {
                    let upd = factor * m[(k, j)];
                    m[(i, j)] -= upd;
                }
            }
        }
    }
    Ok(Lu { lu: m, perm, sign })
}

impl Lu {
    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.lu.nrows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation, then forward substitution with unit L.
        let mut y: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            for k in 0..i {
                y[i] -= self.lu[(i, k)] * y[k];
            }
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.lu[(i, k)] * y[k];
            }
            y[i] /= self.lu[(i, i)];
        }
        Ok(y)
    }

    /// Solve for several right-hand sides stacked as matrix columns.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.lu.nrows();
        if b.nrows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut x = Matrix::zeros(n, b.ncols());
        for j in 0..b.ncols() {
            let col = self.solve(b.col(j))?;
            x.col_mut(j).copy_from_slice(&col);
        }
        Ok(x)
    }

    /// Explicit inverse `A^{-1}` (column-by-column solve with unit vectors).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        let n = self.lu.nrows();
        self.solve_matrix(&Matrix::identity(n))
    }

    /// Determinant `det A = sign · Π U_kk`.
    pub fn det(&self) -> f64 {
        let n = self.lu.nrows();
        let mut d = self.sign;
        for k in 0..n {
            d *= self.lu[(k, k)];
        }
        d
    }
}

/// Convenience: invert a square matrix.
pub fn inverse(a: &Matrix) -> Result<Matrix, LinalgError> {
    lu(a)?.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    fn test_matrix(n: usize) -> Matrix {
        // Diagonally dominant, comfortably invertible and needing pivoting
        // after the off-diagonal perturbation below.
        let mut a = Matrix::from_fn(n, n, |i, j| ((3 * i + 5 * j) % 7) as f64 * 0.4);
        a.shift_diag(n as f64);
        a[(0, 0)] = 1e-8; // force a pivot swap in column 0
        a
    }

    #[test]
    fn solve_roundtrip() {
        let a = test_matrix(9);
        let x_true: Vec<f64> = (0..9).map(|i| (i as f64).cos()).collect();
        let mut b = vec![0.0; 9];
        crate::blas2::gemv(1.0, &a, &x_true, 0.0, &mut b).unwrap();
        let x = lu(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_times_a_is_identity() {
        let a = test_matrix(7);
        let ainv = inverse(&a).unwrap();
        let prod = matmul(&ainv, &a).unwrap();
        assert!(prod.allclose(&Matrix::identity(7), 1e-9));
    }

    #[test]
    fn det_of_known_matrix() {
        let a = Matrix::from_row_major(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let d = lu(&a).unwrap().det();
        assert!((d + 2.0).abs() < 1e-12);
    }

    #[test]
    fn det_of_permutation_has_sign() {
        // Swap matrix: det = -1.
        let a = Matrix::from_row_major(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let d = lu(&a).unwrap().det();
        assert!((d + 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_row_major(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(lu(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = test_matrix(5);
        let b = Matrix::from_fn(5, 3, |i, j| (i + j) as f64);
        let x = lu(&a).unwrap().solve_matrix(&b).unwrap();
        let back = matmul(&a, &x).unwrap();
        assert!(back.allclose(&b, 1e-9));
    }

    #[test]
    fn non_square_rejected() {
        assert!(lu(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn rhs_length_mismatch() {
        let a = test_matrix(4);
        let f = lu(&a).unwrap();
        assert!(f.solve(&[1.0]).is_err());
    }
}
