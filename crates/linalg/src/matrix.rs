//! Column-major dense matrix type.
//!
//! The submatrix method assembles *dense* principal submatrices out of a
//! sparse operator and evaluates matrix functions on them (paper Sec. III).
//! This module provides the dense container those evaluations run on.
//! Column-major storage matches the BLAS/LAPACK convention used by CP2K.
//!
//! [`MatrixBase`] is generic over the [`Elem`] scalar so the hot kernels
//! (GEMM, sign iterations) can run in single precision for the paper's
//! approximate-computing mode; [`Matrix`] is the `f64` instance every
//! existing API works in, [`MatrixF32`] the single-precision one.

use crate::elem::Elem;
use crate::error::LinalgError;

/// Dense column-major matrix over an [`Elem`] scalar.
///
/// Element `(i, j)` lives at linear index `i + j * nrows`.
#[derive(Clone, PartialEq)]
pub struct MatrixBase<E: Elem> {
    nrows: usize,
    ncols: usize,
    data: Vec<E>,
}

/// Double-precision matrix — the default scalar of the whole stack.
pub type Matrix = MatrixBase<f64>;

/// Single-precision matrix used by the reduced-precision solve kernels.
pub type MatrixF32 = MatrixBase<f32>;

impl<E: Elem> std::fmt::Debug for MatrixBase<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.nrows, self.ncols)?;
        let show_r = self.nrows.min(8);
        let show_c = self.ncols.min(8);
        for i in 0..show_r {
            write!(f, "  ")?;
            for j in 0..show_c {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            if show_c < self.ncols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if show_r < self.nrows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl<E: Elem> MatrixBase<E> {
    /// Create a zero-filled matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        MatrixBase {
            nrows,
            ncols,
            data: vec![E::ZERO; nrows * ncols],
        }
    }

    /// Create the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = MatrixBase::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = E::ONE;
        }
        m
    }

    /// Build a matrix from a column-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_col_major(nrows: usize, ncols: usize, data: Vec<E>) -> Self {
        assert_eq!(
            data.len(),
            nrows * ncols,
            "from_col_major: data length {} does not match {}x{}",
            data.len(),
            nrows,
            ncols
        );
        MatrixBase { nrows, ncols, data }
    }

    /// Build a matrix from row-major data (convenient for literals in tests).
    ///
    /// # Panics
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_row_major(nrows: usize, ncols: usize, data: &[E]) -> Self {
        assert_eq!(data.len(), nrows * ncols);
        let mut m = MatrixBase::zeros(nrows, ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                m[(i, j)] = data[i * ncols + j];
            }
        }
        m
    }

    /// Build a matrix by evaluating `f(i, j)` for every element.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> E) -> Self {
        let mut m = MatrixBase::zeros(nrows, ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Build a square diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[E]) -> Self {
        let n = diag.len();
        let mut m = MatrixBase::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Raw column-major data slice.
    #[inline]
    pub fn as_slice(&self) -> &[E] {
        &self.data
    }

    /// Mutable raw column-major data slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [E] {
        &mut self.data
    }

    /// Consume the matrix, returning its column-major data.
    pub fn into_vec(self) -> Vec<E> {
        self.data
    }

    /// Borrow column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[E] {
        debug_assert!(j < self.ncols);
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Mutably borrow column `j` as a contiguous slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [E] {
        debug_assert!(j < self.ncols);
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Copy row `i` into a freshly allocated vector.
    pub fn row(&self, i: usize) -> Vec<E> {
        (0..self.ncols).map(|j| self[(i, j)]).collect()
    }

    /// Copy the main diagonal into a vector.
    pub fn diag(&self) -> Vec<E> {
        let n = self.nrows.min(self.ncols);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    /// Trace (sum of diagonal elements). Requires a square matrix only in
    /// spirit; for rectangular input the min-dimension diagonal is summed.
    pub fn trace(&self) -> E {
        let mut s = E::ZERO;
        for d in self.diag() {
            s += d;
        }
        s
    }

    /// Return the transposed matrix.
    pub fn transpose(&self) -> MatrixBase<E> {
        let mut t = MatrixBase::zeros(self.ncols, self.nrows);
        for j in 0..self.ncols {
            for i in 0..self.nrows {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Extract the principal submatrix picking `idx` rows and columns.
    ///
    /// This is the core selection operation of the submatrix method: given
    /// the index set of nonzero rows of a column, it carves the induced
    /// dense principal submatrix out of `self`.
    pub fn principal_submatrix(&self, idx: &[usize]) -> MatrixBase<E> {
        let k = idx.len();
        let mut s = MatrixBase::zeros(k, k);
        for (jj, &j) in idx.iter().enumerate() {
            for (ii, &i) in idx.iter().enumerate() {
                s[(ii, jj)] = self[(i, j)];
            }
        }
        s
    }

    /// Extract a general (possibly rectangular) submatrix from row indices
    /// `rows` and column indices `cols`.
    pub fn submatrix(&self, rows: &[usize], cols: &[usize]) -> MatrixBase<E> {
        let mut s = MatrixBase::zeros(rows.len(), cols.len());
        for (jj, &j) in cols.iter().enumerate() {
            for (ii, &i) in rows.iter().enumerate() {
                s[(ii, jj)] = self[(i, j)];
            }
        }
        s
    }

    /// Elementwise `self + other`.
    pub fn add(&self, other: &MatrixBase<E>) -> Result<MatrixBase<E>, LinalgError> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = self.clone();
        for (o, &b) in out.data.iter_mut().zip(other.data.iter()) {
            *o += b;
        }
        Ok(out)
    }

    /// Elementwise `self - other`.
    pub fn sub(&self, other: &MatrixBase<E>) -> Result<MatrixBase<E>, LinalgError> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "sub",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = self.clone();
        for (o, &b) in out.data.iter_mut().zip(other.data.iter()) {
            *o -= b;
        }
        Ok(out)
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: E, other: &MatrixBase<E>) -> Result<(), LinalgError> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (o, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *o += alpha * b;
        }
        Ok(())
    }

    /// Scale every element in place.
    pub fn scale(&mut self, alpha: E) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Return `alpha * self` as a new matrix.
    pub fn scaled(&self, alpha: E) -> MatrixBase<E> {
        let mut out = self.clone();
        out.scale(alpha);
        out
    }

    /// Add `alpha` to each diagonal element in place (`self += alpha * I`).
    pub fn shift_diag(&mut self, alpha: E) {
        let n = self.nrows.min(self.ncols);
        for i in 0..n {
            self[(i, i)] += alpha;
        }
    }

    /// Symmetrize in place: `self = (self + self^T) / 2`. Square only.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        let half = E::from_f64(0.5);
        for j in 0..self.ncols {
            for i in 0..j {
                let avg = half * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// Maximum absolute deviation from symmetry, `max |A - A^T|`.
    pub fn asymmetry(&self) -> f64 {
        assert!(self.is_square());
        let mut worst = 0.0f64;
        for j in 0..self.ncols {
            for i in 0..j {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs().to_f64());
            }
        }
        worst
    }

    /// True if every element differs from `other` by at most `tol`.
    pub fn allclose(&self, other: &MatrixBase<E>, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs().to_f64() <= tol)
    }

    /// Largest absolute element difference to `other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &MatrixBase<E>) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs().to_f64())
            .fold(0.0, f64::max)
    }

    /// Number of elements with absolute value above `threshold`.
    pub fn count_above(&self, threshold: f64) -> usize {
        self.data
            .iter()
            .filter(|v| v.abs().to_f64() > threshold)
            .count()
    }

    /// Zero out all elements with `|a_ij| <= threshold`, returning how many
    /// elements were dropped. This is the element-wise analogue of the
    /// DBCSR `eps_filter` truncation.
    pub fn filter(&mut self, threshold: f64) -> usize {
        let mut dropped = 0;
        for v in &mut self.data {
            if v.abs().to_f64() <= threshold && *v != E::ZERO {
                *v = E::ZERO;
                dropped += 1;
            }
        }
        dropped
    }

    /// Convert to another element type, rounding every value through the
    /// target storage format.
    pub fn cast<F: Elem>(&self) -> MatrixBase<F> {
        MatrixBase {
            nrows: self.nrows,
            ncols: self.ncols,
            data: self.data.iter().map(|v| F::from_f64(v.to_f64())).collect(),
        }
    }
}

impl Matrix {
    /// Round to single precision (the reduced-precision solve input).
    pub fn to_f32(&self) -> MatrixF32 {
        self.cast()
    }

    /// Round every element through `f32` storage, keeping `f64` layout —
    /// models values that crossed an `f32` wire or device memory.
    pub fn round_f32_storage(&self) -> Matrix {
        MatrixBase {
            nrows: self.nrows,
            ncols: self.ncols,
            data: self.data.iter().map(|&v| v as f32 as f64).collect(),
        }
    }
}

impl MatrixF32 {
    /// Widen to double precision (exact).
    pub fn to_f64(&self) -> Matrix {
        self.cast()
    }
}

impl<E: Elem> std::ops::Index<(usize, usize)> for MatrixBase<E> {
    type Output = E;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &E {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i + j * self.nrows]
    }
}

impl<E: Elem> std::ops::IndexMut<(usize, usize)> for MatrixBase<E> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut E {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i + j * self.nrows]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        assert!(!m.is_square());
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_has_unit_diag() {
        let m = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
        assert_eq!(m.trace(), 4.0);
    }

    #[test]
    fn col_major_layout() {
        let m = Matrix::from_col_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        // column 0 = [1, 2], column 1 = [3, 4]
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
        assert_eq!(m.col(1), &[3.0, 4.0]);
    }

    #[test]
    fn row_major_constructor_matches_math_layout() {
        let m = Matrix::from_row_major(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 10 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t[(4, 2)], m[(2, 4)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn principal_submatrix_selects_rows_and_cols() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.principal_submatrix(&[0, 2]);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s[(0, 0)], m[(0, 0)]);
        assert_eq!(s[(0, 1)], m[(0, 2)]);
        assert_eq!(s[(1, 0)], m[(2, 0)]);
        assert_eq!(s[(1, 1)], m[(2, 2)]);
    }

    #[test]
    fn submatrix_rectangular() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.submatrix(&[1, 3], &[0, 1, 2]);
        assert_eq!(s.shape(), (2, 3));
        assert_eq!(s[(1, 2)], m[(3, 2)]);
    }

    #[test]
    fn add_sub_axpy() {
        let a = Matrix::from_row_major(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::identity(2);
        let c = a.add(&b).unwrap();
        assert_eq!(c[(0, 0)], 2.0);
        let d = c.sub(&b).unwrap();
        assert_eq!(d, a);
        let mut e = a.clone();
        e.axpy(2.0, &b).unwrap();
        assert_eq!(e[(0, 0)], 3.0);
        assert_eq!(e[(1, 1)], 6.0);
    }

    #[test]
    fn add_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.add(&b),
            Err(LinalgError::DimensionMismatch { op: "add", .. })
        ));
    }

    #[test]
    fn scale_and_shift_diag() {
        let mut m = Matrix::identity(3);
        m.scale(2.0);
        assert_eq!(m[(1, 1)], 2.0);
        m.shift_diag(-2.0);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn symmetrize_and_asymmetry() {
        let mut m = Matrix::from_row_major(2, 2, &[1.0, 2.0, 4.0, 1.0]);
        assert!((m.asymmetry() - 2.0).abs() < 1e-15);
        m.symmetrize();
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.asymmetry(), 0.0);
    }

    #[test]
    fn filter_drops_small_elements() {
        let mut m = Matrix::from_row_major(2, 2, &[1.0, 1e-9, -1e-9, 2.0]);
        let dropped = m.filter(1e-6);
        assert_eq!(dropped, 2);
        assert_eq!(m[(0, 1)], 0.0);
        assert_eq!(m[(1, 0)], 0.0);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m.count_above(0.5), 2);
    }

    #[test]
    fn from_diag_builds_diagonal() {
        let m = Matrix::from_diag(&[1.0, -2.0, 3.0]);
        assert_eq!(m.shape(), (3, 3));
        assert_eq!(m.diag(), vec![1.0, -2.0, 3.0]);
        assert_eq!(m[(0, 1)], 0.0);
        assert_eq!(m.trace(), 2.0);
    }

    #[test]
    fn allclose_and_max_abs_diff() {
        let a = Matrix::identity(2);
        let mut b = a.clone();
        b[(0, 1)] = 1e-9;
        assert!(a.allclose(&b, 1e-8));
        assert!(!a.allclose(&b, 1e-10));
        assert!((a.max_abs_diff(&b) - 1e-9).abs() < 1e-24);
    }

    #[test]
    fn debug_format_truncates() {
        let m = Matrix::zeros(20, 20);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 20x20"));
        assert!(s.contains("..."));
    }

    #[test]
    fn f32_matrix_basic_ops() {
        let a = MatrixF32::from_row_major(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a[(0, 1)], 2.0f32);
        let mut b = a.clone();
        b.scale(2.0);
        assert_eq!(b[(1, 1)], 8.0f32);
        assert_eq!(a.transpose()[(1, 0)], 2.0f32);
        assert_eq!(a.trace(), 5.0f32);
    }

    #[test]
    fn cast_roundtrips_and_rounds() {
        let a = Matrix::from_row_major(2, 2, &[0.1, 1.0 + 1e-12, -3.0, 0.0]);
        let a32 = a.to_f32();
        // Widening back is exact, but carries the f32 rounding.
        let back = a32.to_f64();
        assert_eq!(back[(0, 0)], 0.1f32 as f64);
        assert_eq!(back[(0, 1)], 1.0);
        assert_eq!(back[(1, 0)], -3.0);
        // round_f32_storage is the same rounding with f64 layout.
        assert_eq!(a.round_f32_storage(), back);
        // Idempotent: rounding an already-rounded matrix changes nothing.
        assert_eq!(back.round_f32_storage(), back);
    }
}
