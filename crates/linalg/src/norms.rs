//! Matrix norms.
//!
//! The Frobenius norm drives the convergence tests of the sign iterations
//! (the involutority residual ‖Xₖ² − I‖_F of paper Fig. 13); the 1- and
//! ∞-norms bound spectral radii for iteration scaling.

use crate::elem::Elem;
use crate::matrix::{Matrix, MatrixBase};

/// Frobenius norm `sqrt(Σ a_ij²)` with overflow-safe scaling.
pub fn fro_norm(a: &Matrix) -> f64 {
    crate::blas1::nrm2(a.as_slice())
}

/// 1-norm: maximum absolute column sum (any element type; accumulated in
/// `f64` so the bound is reliable for `f32` storage too).
pub fn one_norm<E: Elem>(a: &MatrixBase<E>) -> f64 {
    (0..a.ncols())
        .map(|j| a.col(j).iter().map(|v| v.abs().to_f64()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// ∞-norm: maximum absolute row sum (any element type).
pub fn inf_norm<E: Elem>(a: &MatrixBase<E>) -> f64 {
    let mut sums = vec![0.0f64; a.nrows()];
    for j in 0..a.ncols() {
        for (i, &v) in a.col(j).iter().enumerate() {
            sums[i] += v.abs().to_f64();
        }
    }
    sums.into_iter().fold(0.0, f64::max)
}

/// Largest absolute element (any element type).
pub fn max_norm<E: Elem>(a: &MatrixBase<E>) -> f64 {
    a.as_slice()
        .iter()
        .map(|v| v.abs().to_f64())
        .fold(0.0, f64::max)
}

/// Cheap upper bound on the spectral radius of a symmetric matrix:
/// `sqrt(‖A‖₁ · ‖A‖∞)` (equals ‖A‖₁ for symmetric input). Used to scale
/// Newton–Schulz style iterations into their convergence region.
pub fn spectral_bound<E: Elem>(a: &MatrixBase<E>) -> f64 {
    (one_norm(a) * inf_norm(a)).sqrt()
}

/// Frobenius norm of `A² - I` without forming the subtraction separately —
/// the involutority residual used as the convergence criterion of the sign
/// iterations (paper Fig. 13). Accumulated in `f64` for every element type
/// so the `f32` iterations get a trustworthy convergence test.
pub fn involutority_residual<E: Elem>(a2: &MatrixBase<E>) -> f64 {
    assert!(a2.is_square());
    let n = a2.nrows();
    let mut ssq = 0.0f64;
    for j in 0..n {
        for (i, &v) in a2.col(j).iter().enumerate() {
            let r = if i == j { v.to_f64() - 1.0 } else { v.to_f64() };
            ssq += r * r;
        }
    }
    ssq.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fro_norm_basic() {
        let a = Matrix::from_row_major(2, 2, &[3.0, 0.0, 0.0, 4.0]);
        assert!((fro_norm(&a) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn one_and_inf_norms() {
        let a = Matrix::from_row_major(2, 2, &[1.0, -2.0, 3.0, 4.0]);
        assert_eq!(one_norm(&a), 6.0); // col 1: |-2|+|4| = 6
        assert_eq!(inf_norm(&a), 7.0); // row 1: |3|+|4| = 7
    }

    #[test]
    fn max_norm_basic() {
        let a = Matrix::from_row_major(2, 2, &[1.0, -9.0, 3.0, 4.0]);
        assert_eq!(max_norm(&a), 9.0);
    }

    #[test]
    fn spectral_bound_dominates_eigenvalues() {
        let mut a = Matrix::from_fn(6, 6, |i, j| ((i + 2 * j) % 5) as f64 * 0.3);
        a.symmetrize();
        let bound = spectral_bound(&a);
        let eig = crate::eigh::eigvalsh(&a).unwrap();
        let rho = eig.iter().fold(0.0f64, |m, &l| m.max(l.abs()));
        assert!(
            bound >= rho - 1e-12,
            "bound {bound} < spectral radius {rho}"
        );
    }

    #[test]
    fn involutority_residual_of_identity_squared() {
        let i = Matrix::identity(5);
        assert_eq!(involutority_residual(&i), 0.0);
        let mut almost = i.clone();
        almost[(2, 3)] = 1e-3;
        assert!((involutority_residual(&almost) - 1e-3).abs() < 1e-18);
    }

    #[test]
    fn norms_of_empty_matrix() {
        let a = Matrix::zeros(0, 0);
        assert_eq!(fro_norm(&a), 0.0);
        assert_eq!(one_norm(&a), 0.0);
        assert_eq!(inf_norm(&a), 0.0);
        assert_eq!(max_norm(&a), 0.0);
    }
}
