//! Matrix roots and inverse roots.
//!
//! Löwdin symmetric orthogonalization (paper Sec. IV-F) needs `S^{-1/2}`;
//! the submatrix method was originally published for inverse p-th roots
//! (paper ref. \[8\]), so the general operation is provided as well. Two
//! routes: exact via eigendecomposition, and the coupled Newton–Schulz
//! iteration that CP2K uses on sparse matrices.

use crate::eigh::eigh;
use crate::gemm::matmul;
use crate::matrix::Matrix;
use crate::norms::{fro_norm, spectral_bound};
use crate::LinalgError;

/// `A^{1/2}` of a symmetric positive semi-definite matrix via
/// eigendecomposition. Small negative eigenvalues (roundoff) are clamped
/// to zero.
pub fn sqrt_eig(a: &Matrix) -> Result<Matrix, LinalgError> {
    Ok(eigh(a)?.apply(|l| l.max(0.0).sqrt()))
}

/// `A^{-1/2}` of a symmetric positive-definite matrix via
/// eigendecomposition. Fails if an eigenvalue is not strictly positive.
pub fn inv_sqrt_eig(a: &Matrix) -> Result<Matrix, LinalgError> {
    let dec = eigh(a)?;
    if let Some((idx, _)) = dec.eigenvalues.iter().enumerate().find(|(_, &l)| l <= 0.0) {
        return Err(LinalgError::Singular {
            op: "inv_sqrt_eig",
            index: idx,
        });
    }
    Ok(dec.apply(|l| 1.0 / l.sqrt()))
}

/// `A^{-1/p}` of a symmetric positive-definite matrix via
/// eigendecomposition (the operation of the original submatrix-method
/// paper, ref. \[8\]).
pub fn inv_pth_root_eig(a: &Matrix, p: u32) -> Result<Matrix, LinalgError> {
    assert!(p >= 1, "inv_pth_root_eig: p must be >= 1");
    let dec = eigh(a)?;
    if let Some((idx, _)) = dec.eigenvalues.iter().enumerate().find(|(_, &l)| l <= 0.0) {
        return Err(LinalgError::Singular {
            op: "inv_pth_root_eig",
            index: idx,
        });
    }
    let exp = -1.0 / p as f64;
    Ok(dec.apply(|l| l.powf(exp)))
}

/// Result of the coupled Newton–Schulz inverse-square-root iteration.
#[derive(Debug, Clone)]
pub struct InvSqrtResult {
    /// Approximation of `A^{-1/2}`.
    pub inv_sqrt: Matrix,
    /// Approximation of `A^{1/2}` (the coupled iterate, free of charge).
    pub sqrt: Matrix,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the residual tolerance was met.
    pub converged: bool,
}

/// Coupled Newton–Schulz iteration for `A^{-1/2}` (Denman–Beavers in its
/// stable product form):
///
/// ```text
/// Y₀ = A/s,  Z₀ = I
/// T  = (3I − Zₖ Yₖ)/2
/// Yₖ₊₁ = Yₖ T,   Zₖ₊₁ = T Zₖ
/// Y → (A/s)^{1/2},  Z → (A/s)^{-1/2}
/// ```
///
/// The scaling `s = spectral_bound(A)` keeps `‖I − A/s‖ < 1` for SPD input
/// so the quadratically convergent region is entered immediately. This is
/// the sparse-friendly route CP2K uses for Löwdin orthogonalization.
pub fn newton_schulz_inv_sqrt(
    a: &Matrix,
    tol: f64,
    max_iter: usize,
) -> Result<InvSqrtResult, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            op: "newton_schulz_inv_sqrt",
            shape: a.shape(),
        });
    }
    let n = a.nrows();
    let s = spectral_bound(a).max(f64::MIN_POSITIVE);
    let mut y = a.scaled(1.0 / s);
    let mut z = Matrix::identity(n);
    let sqrt_n = (n.max(1) as f64).sqrt();

    let mut converged = false;
    let mut iterations = 0;
    for it in 0..max_iter {
        iterations = it + 1;
        // T = (3I − Z Y)/2
        let mut t = matmul(&z, &y)?;
        t.scale(-0.5);
        t.shift_diag(1.5);
        y = matmul(&y, &t)?;
        z = matmul(&t, &z)?;

        // Convergence: ‖Z Y − I‖_F / √n (Y Z = I at the fixed point).
        let mut res = matmul(&z, &y)?;
        res.shift_diag(-1.0);
        if fro_norm(&res) / sqrt_n <= tol {
            converged = true;
            break;
        }
    }

    // Undo the scaling: A^{1/2} = √s · Y, A^{-1/2} = Z / √s.
    let rs = s.sqrt();
    y.scale(rs);
    z.scale(1.0 / rs);
    Ok(InvSqrtResult {
        inv_sqrt: z,
        sqrt: y,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul_nt;

    fn spd_matrix(n: usize) -> Matrix {
        let b = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 11) % 7) as f64 * 0.15);
        let mut a = matmul_nt(&b, &b).unwrap();
        a.shift_diag(1.0 + n as f64 * 0.1);
        a
    }

    #[test]
    fn sqrt_squares_back() {
        let a = spd_matrix(10);
        let r = sqrt_eig(&a).unwrap();
        let back = matmul(&r, &r).unwrap();
        assert!(back.allclose(&a, 1e-10));
    }

    #[test]
    fn inv_sqrt_whitens() {
        let a = spd_matrix(8);
        let w = inv_sqrt_eig(&a).unwrap();
        // W A W = I (Löwdin orthogonalization property).
        let waw = matmul(&matmul(&w, &a).unwrap(), &w).unwrap();
        assert!(waw.allclose(&Matrix::identity(8), 1e-10));
    }

    #[test]
    fn inv_sqrt_rejects_indefinite() {
        let a = Matrix::from_diag(&[1.0, -1.0]);
        assert!(matches!(
            inv_sqrt_eig(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn inv_pth_root_identities() {
        let a = spd_matrix(6);
        // p = 1: plain inverse.
        let r1 = inv_pth_root_eig(&a, 1).unwrap();
        let prod = matmul(&r1, &a).unwrap();
        assert!(prod.allclose(&Matrix::identity(6), 1e-9));
        // p = 2: matches inv_sqrt.
        let r2 = inv_pth_root_eig(&a, 2).unwrap();
        assert!(r2.allclose(&inv_sqrt_eig(&a).unwrap(), 1e-10));
        // p = 4: (A^{-1/4})^4 A = I.
        let r4 = inv_pth_root_eig(&a, 4).unwrap();
        let r4_2 = matmul(&r4, &r4).unwrap();
        let r4_4 = matmul(&r4_2, &r4_2).unwrap();
        let p4 = matmul(&r4_4, &a).unwrap();
        assert!(p4.allclose(&Matrix::identity(6), 1e-8));
    }

    #[test]
    fn newton_schulz_matches_eig_route() {
        let a = spd_matrix(12);
        let exact = inv_sqrt_eig(&a).unwrap();
        let ns = newton_schulz_inv_sqrt(&a, 1e-12, 100).unwrap();
        assert!(ns.converged, "NS inverse sqrt did not converge");
        assert!(
            ns.inv_sqrt.allclose(&exact, 1e-8),
            "max diff {}",
            ns.inv_sqrt.max_abs_diff(&exact)
        );
        // The coupled iterate approximates A^{1/2}.
        assert!(ns.sqrt.allclose(&sqrt_eig(&a).unwrap(), 1e-8));
    }

    #[test]
    fn newton_schulz_on_identity_converges_immediately() {
        let a = Matrix::identity(5);
        let ns = newton_schulz_inv_sqrt(&a, 1e-14, 10).unwrap();
        assert!(ns.converged);
        assert!(ns.inv_sqrt.allclose(&Matrix::identity(5), 1e-10));
    }

    #[test]
    fn newton_schulz_budget_exhaustion_reports_not_converged() {
        let a = spd_matrix(6);
        let ns = newton_schulz_inv_sqrt(&a, 0.0, 2).unwrap();
        assert!(!ns.converged);
        assert_eq!(ns.iterations, 2);
    }

    #[test]
    fn non_square_rejected() {
        assert!(newton_schulz_inv_sqrt(&Matrix::zeros(2, 3), 1e-10, 5).is_err());
    }
}
