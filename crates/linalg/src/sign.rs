//! The matrix sign function.
//!
//! Three evaluation strategies from the paper:
//!
//! * [`sign_eig`] — eigendecomposition + elementwise signum (Eq. 17), the
//!   method of choice for dense submatrices (Sec. IV-F), including the
//!   extended definition `sign(0) = 0` of Eq. 12;
//! * [`newton_schulz_sign`] — the 2nd-order Newton–Schulz iteration
//!   (Eq. 11), CP2K's default for sparse matrices and the paper's baseline;
//! * [`sign_iteration`] — the arbitrary-order Padé/Newton–Schulz family;
//!   order 3 reproduces Eq. 19 used in the GPU/FPGA study.

use crate::eigh::eigh;
use crate::elem::Elem;
use crate::gemm::{matmul, matmul_in, matmul_wide};
use crate::matrix::{Matrix, MatrixBase};
use crate::norms::{involutority_residual, spectral_bound};
use crate::LinalgError;

/// Eigenvalues with magnitude below this count as "on the imaginary axis"
/// and map to 0 per the extended definition (paper Eq. 12).
pub const ZERO_EIGENVALUE_TOL: f64 = 1e-12;

/// Extended scalar sign: −1 / 0 / +1 with a tolerance band around zero.
#[inline]
pub fn extended_signum(x: f64) -> f64 {
    if x.abs() <= ZERO_EIGENVALUE_TOL {
        0.0
    } else {
        x.signum()
    }
}

/// `sign(A)` of a symmetric matrix via eigendecomposition (paper Eq. 17).
pub fn sign_eig(a: &Matrix) -> Result<Matrix, LinalgError> {
    Ok(eigh(a)?.apply(extended_signum))
}

/// Progress record of one iterative sign evaluation step.
#[derive(Debug, Clone, Copy)]
pub struct SignStep {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Involutority residual ‖Xₖ² − I‖_F after the step (Fig. 13's metric).
    pub residual: f64,
}

/// Result of an iterative sign evaluation (generic over the element type;
/// the historical `f64` entry points use [`SignIterationResult`]).
#[derive(Debug, Clone)]
pub struct SignIterationResultIn<E: Elem> {
    /// Converged (or best-effort) sign matrix.
    pub sign: MatrixBase<E>,
    /// Per-iteration residual trace.
    pub trace: Vec<SignStep>,
    /// Whether the tolerance was met within the iteration budget.
    pub converged: bool,
}

/// Result of an iterative sign evaluation in double precision.
pub type SignIterationResult = SignIterationResultIn<f64>;

/// The scalar types the iterative sign kernels run in. Adds the one piece
/// of per-type dispatch the generic iteration needs: the square multiply,
/// which for `f32` may use the `f64`-accumulating inner kernel
/// ([`matmul_wide`]).
pub trait SignElem: Elem {
    /// `A · B` with the element type's accumulation policy.
    fn multiply(
        a: &MatrixBase<Self>,
        b: &MatrixBase<Self>,
        wide_acc: bool,
    ) -> Result<MatrixBase<Self>, LinalgError>;
}

impl SignElem for f64 {
    fn multiply(
        a: &MatrixBase<f64>,
        b: &MatrixBase<f64>,
        _wide_acc: bool,
    ) -> Result<MatrixBase<f64>, LinalgError> {
        matmul_in(a, b)
    }
}

impl SignElem for f32 {
    fn multiply(
        a: &MatrixBase<f32>,
        b: &MatrixBase<f32>,
        wide_acc: bool,
    ) -> Result<MatrixBase<f32>, LinalgError> {
        if wide_acc {
            matmul_wide(a, b)
        } else {
            matmul_in(a, b)
        }
    }
}

/// Options for the iterative sign evaluations.
#[derive(Debug, Clone, Copy)]
pub struct SignIterationOptions {
    /// Convergence threshold on ‖Xₖ² − I‖_F / √n.
    pub tol: f64,
    /// Iteration budget.
    pub max_iter: usize,
    /// Pre-scale `X₀ = A / spectral_bound(A)` so the iteration starts inside
    /// its convergence region. Disable only for matrices already scaled.
    pub prescale: bool,
}

impl Default for SignIterationOptions {
    fn default() -> Self {
        SignIterationOptions {
            tol: 1e-10,
            max_iter: 100,
            prescale: true,
        }
    }
}

/// Coefficients of the order-`p` Padé/Newton–Schulz sign polynomial:
/// `X_{k+1} = X_k · Σ_{i<p} c_i (I − X_k²)^i` with
/// `c_i = C(2i, i) / 4^i` (the binomial series of `(1−z)^{−1/2}`).
///
/// Order 2 reproduces Newton–Schulz (Eq. 11), order 3 reproduces the GPU
/// iteration of Eq. 19.
pub fn pade_coefficients(order: usize) -> Vec<f64> {
    assert!(order >= 2, "sign iteration order must be at least 2");
    let mut c = Vec::with_capacity(order);
    let mut coef = 1.0f64;
    for i in 0..order {
        if i > 0 {
            // C(2i, i)/4^i = prev * (2i-1)/(2i)
            coef *= (2 * i - 1) as f64 / (2 * i) as f64;
        }
        c.push(coef);
    }
    c
}

/// Arbitrary-order Padé sign iteration on a symmetric matrix, generic over
/// the element type (the reduced-precision execution path runs this very
/// kernel in `f32`).
///
/// Every step computes `Y = X²` (also used for the convergence test), then
/// evaluates the order-`p` polynomial in `Y` by Horner's rule in the
/// variable `E = I − Y`, and finally multiplies by `X`. With
/// `wide_acc = true` the `f32` instance accumulates every multiply in
/// `f64` ([`matmul_wide`]) — single-precision storage, double-precision
/// sums; the flag is a no-op for `f64`.
pub fn sign_iteration_in<E: SignElem>(
    a: &MatrixBase<E>,
    order: usize,
    opts: SignIterationOptions,
    wide_acc: bool,
) -> Result<SignIterationResultIn<E>, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            op: "sign_iteration",
            shape: a.shape(),
        });
    }
    let n = a.nrows();
    let coeffs = pade_coefficients(order);
    let sqrt_n = (n.max(1) as f64).sqrt();

    let mut x = a.clone();
    if opts.prescale {
        let bound = spectral_bound(a);
        if bound > 0.0 {
            x.scale(E::from_f64(1.0 / bound));
        }
    }

    let mut trace = Vec::new();
    let mut converged = false;

    for it in 0..opts.max_iter {
        // Y = X².
        let y = E::multiply(&x, &x, wide_acc)?;
        let residual = involutority_residual(&y) / sqrt_n;
        trace.push(SignStep {
            iteration: it,
            residual,
        });
        if residual <= opts.tol {
            converged = true;
            break;
        }

        // E = I − Y; evaluate P(E) = Σ c_i E^i by Horner.
        let mut e = y;
        e.scale(E::from_f64(-1.0));
        e.shift_diag(E::ONE);
        let mut p = MatrixBase::<E>::identity(n);
        p.scale(E::from_f64(coeffs[order - 1]));
        for i in (0..order - 1).rev() {
            // p = p*E + c_i I
            let mut next = E::multiply(&p, &e, wide_acc)?;
            next.shift_diag(E::from_f64(coeffs[i]));
            p = next;
        }
        // X = X * P
        x = E::multiply(&x, &p, wide_acc)?;
    }

    Ok(SignIterationResultIn {
        sign: x,
        trace,
        converged,
    })
}

/// Double-precision Padé sign iteration (the historical entry point).
pub fn sign_iteration(
    a: &Matrix,
    order: usize,
    opts: SignIterationOptions,
) -> Result<SignIterationResult, LinalgError> {
    sign_iteration_in(a, order, opts, false)
}

/// One double-precision Newton–Schulz step `X ← X·(3I − X²)/2` — the cheap
/// `f64` refinement pass applied after an `f32` sign solve
/// (`Precision::Fp32Refined`). The NS map converges quadratically near an
/// involutory matrix, so a single step takes an `f32`-accurate iterate
/// (residual ~1e-5) to well below 1e-6 without re-running the iteration.
pub fn refine_sign_newton_schulz(x: &Matrix) -> Result<Matrix, LinalgError> {
    let y = matmul(x, x)?;
    let mut q = y.scaled(-0.5);
    q.shift_diag(1.5);
    matmul(x, &q)
}

/// 2nd-order Newton–Schulz sign iteration (paper Eq. 11).
pub fn newton_schulz_sign(
    a: &Matrix,
    opts: SignIterationOptions,
) -> Result<SignIterationResult, LinalgError> {
    sign_iteration(a, 2, opts)
}

/// 3rd-order Padé sign iteration (paper Eq. 19, used on GPU/FPGA).
pub fn pade3_sign(
    a: &Matrix,
    opts: SignIterationOptions,
) -> Result<SignIterationResult, LinalgError> {
    sign_iteration(a, 3, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Symmetric test matrix with spectrum well away from zero.
    fn gapped_matrix(n: usize) -> Matrix {
        // Diagonal ±1.5 with decaying symmetric coupling — guaranteed gap.
        let mut a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                if i % 2 == 0 {
                    1.5
                } else {
                    -1.5
                }
            } else {
                0.3 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        a.symmetrize();
        a
    }

    #[test]
    fn sign_eig_is_involutory() {
        let a = gapped_matrix(16);
        let s = sign_eig(&a).unwrap();
        let s2 = matmul(&s, &s).unwrap();
        assert!(s2.allclose(&Matrix::identity(16), 1e-10));
    }

    #[test]
    fn sign_eig_commutes_with_a() {
        let a = gapped_matrix(10);
        let s = sign_eig(&a).unwrap();
        let as_ = matmul(&a, &s).unwrap();
        let sa = matmul(&s, &a).unwrap();
        assert!(as_.allclose(&sa, 1e-10));
    }

    #[test]
    fn sign_of_definite_matrix_is_identity() {
        let mut a = gapped_matrix(8);
        a.shift_diag(10.0); // all eigenvalues positive
        let s = sign_eig(&a).unwrap();
        assert!(s.allclose(&Matrix::identity(8), 1e-10));
    }

    #[test]
    fn extended_sign_maps_zero_eigenvalue_to_zero() {
        // Diagonal matrix with an exact zero eigenvalue (Eq. 12).
        let a = Matrix::from_diag(&[2.0, 0.0, -3.0]);
        let s = sign_eig(&a).unwrap();
        let expect = Matrix::from_diag(&[1.0, 0.0, -1.0]);
        assert!(s.allclose(&expect, 1e-12));
    }

    #[test]
    fn pade_coefficients_match_closed_forms() {
        // Order 2: (3I - Y)/2 => constants [1, 1/2] in E-expansion.
        assert_eq!(pade_coefficients(2), vec![1.0, 0.5]);
        // Order 3: Eq. 19 constants [1, 1/2, 3/8].
        assert_eq!(pade_coefficients(3), vec![1.0, 0.5, 0.375]);
        // Order 4 adds 5/16.
        assert_eq!(pade_coefficients(4), vec![1.0, 0.5, 0.375, 0.3125]);
    }

    #[test]
    fn newton_schulz_matches_eig() {
        let a = gapped_matrix(12);
        let s_ref = sign_eig(&a).unwrap();
        let r = newton_schulz_sign(&a, SignIterationOptions::default()).unwrap();
        assert!(r.converged, "NS did not converge");
        assert!(r.sign.allclose(&s_ref, 1e-7));
    }

    #[test]
    fn pade3_matches_eig_and_converges_in_fewer_iterations() {
        let a = gapped_matrix(12);
        let s_ref = sign_eig(&a).unwrap();
        let ns = newton_schulz_sign(&a, SignIterationOptions::default()).unwrap();
        let p3 = pade3_sign(&a, SignIterationOptions::default()).unwrap();
        assert!(p3.converged);
        assert!(p3.sign.allclose(&s_ref, 1e-7));
        assert!(
            p3.trace.len() <= ns.trace.len(),
            "order 3 ({}) should need no more iterations than order 2 ({})",
            p3.trace.len(),
            ns.trace.len()
        );
    }

    #[test]
    fn higher_orders_agree() {
        let a = gapped_matrix(9);
        let s_ref = sign_eig(&a).unwrap();
        for order in [4, 5, 7] {
            let r = sign_iteration(&a, order, SignIterationOptions::default()).unwrap();
            assert!(r.converged, "order {order} did not converge");
            assert!(r.sign.allclose(&s_ref, 1e-7), "order {order} disagrees");
        }
    }

    #[test]
    fn residual_trace_is_monotone_decreasing_once_converging() {
        let a = gapped_matrix(10);
        let r = newton_schulz_sign(&a, SignIterationOptions::default()).unwrap();
        // After the first couple of steps the residual must fall.
        let tail: Vec<f64> = r.trace.iter().skip(1).map(|s| s.residual).collect();
        for w in tail.windows(2) {
            assert!(w[1] <= w[0] * 1.5, "residual should trend down: {w:?}");
        }
        // Final residual below tolerance.
        assert!(r.trace.last().unwrap().residual <= 1e-10);
    }

    #[test]
    fn iteration_budget_respected() {
        let a = gapped_matrix(8);
        let r = sign_iteration(
            &a,
            2,
            SignIterationOptions {
                tol: 0.0, // unreachable
                max_iter: 3,
                prescale: true,
            },
        )
        .unwrap();
        assert!(!r.converged);
        assert_eq!(r.trace.len(), 3);
    }

    #[test]
    fn f32_iteration_matches_f64_to_single_precision() {
        let a = gapped_matrix(14);
        let s_ref = sign_eig(&a).unwrap();
        for wide in [false, true] {
            let r = sign_iteration_in(
                &a.to_f32(),
                2,
                SignIterationOptions {
                    tol: crate::elem::F32_SIGN_TOL,
                    ..SignIterationOptions::default()
                },
                wide,
            )
            .unwrap();
            assert!(r.converged, "f32 NS (wide={wide}) did not converge");
            let diff = r.sign.to_f64().max_abs_diff(&s_ref);
            assert!(diff < 1e-4, "f32 sign (wide={wide}) off by {diff}");
        }
    }

    #[test]
    fn refinement_step_recovers_f64_accuracy() {
        let a = gapped_matrix(12);
        let s_ref = sign_eig(&a).unwrap();
        let r32 = sign_iteration_in(
            &a.to_f32(),
            2,
            SignIterationOptions {
                tol: crate::elem::F32_SIGN_TOL,
                ..SignIterationOptions::default()
            },
            true,
        )
        .unwrap();
        let coarse = r32.sign.to_f64();
        let refined = refine_sign_newton_schulz(&coarse).unwrap();
        let e_coarse = coarse.max_abs_diff(&s_ref);
        let e_refined = refined.max_abs_diff(&s_ref);
        assert!(
            e_refined < e_coarse,
            "refinement must improve: {e_refined} vs {e_coarse}"
        );
        assert!(e_refined < 1e-6, "refined error {e_refined}");
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(sign_iteration(&a, 2, SignIterationOptions::default()).is_err());
        assert!(sign_eig(&a).is_err());
    }

    #[test]
    fn sign_of_diag_matrix_iterative() {
        let a = Matrix::from_diag(&[4.0, -2.0, 0.5, -0.25]);
        let r = newton_schulz_sign(&a, SignIterationOptions::default()).unwrap();
        let expect = Matrix::from_diag(&[1.0, -1.0, 1.0, -1.0]);
        assert!(r.sign.allclose(&expect, 1e-8));
    }
}
