//! Element-wise sparse matrices (CSR) and sparse sign iterations.
//!
//! Paper Sec. V-C observes that DZVP submatrices are block-dense but
//! element-wise < 20% full, and proposes replacing the dense submatrix
//! solve "by element-wise sparse linear algebra as a future improvement of
//! the submatrix method". This module implements that improvement: a CSR
//! matrix with numerically filtered sparse×sparse multiplication, and a
//! Newton–Schulz/Padé sign iteration running entirely in CSR with
//! per-iteration element filtering.

use crate::matrix::Matrix;
use crate::norms::spectral_bound;
use crate::sign::pade_coefficients;
use crate::LinalgError;

/// Compressed sparse row matrix (square use cases only need one partition).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from a dense matrix, dropping elements with `|a_ij| <= eps`.
    pub fn from_dense(a: &Matrix, eps: f64) -> Self {
        let (m, n) = a.shape();
        let mut row_ptr = Vec::with_capacity(m + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..m {
            for j in 0..n {
                let v = a[(i, j)];
                if v.abs() > eps {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            nrows: m,
            ncols: n,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// `n × n` identity.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Convert back to dense.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                out[(i, self.col_idx[k])] = self.values[k];
            }
        }
        out
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Stored fraction relative to dense.
    pub fn fill(&self) -> f64 {
        if self.nrows == 0 || self.ncols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.nrows * self.ncols) as f64
    }

    /// Scale all values in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.values {
            *v *= alpha;
        }
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        crate::blas1::nrm2(&self.values)
    }

    /// Sparse×sparse multiplication with numerical filtering: result
    /// elements with `|c_ij| <= eps` are dropped. Returns the product and
    /// the flop count actually spent (2 per scalar multiply-add) — the
    /// quantity Sec. V-C's proposal aims to cut.
    pub fn multiply_filtered(
        &self,
        other: &CsrMatrix,
        eps: f64,
    ) -> Result<(CsrMatrix, u64), LinalgError> {
        if self.ncols != other.nrows {
            return Err(LinalgError::DimensionMismatch {
                op: "csr_multiply",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let m = self.nrows;
        let n = other.ncols;
        let mut row_ptr = Vec::with_capacity(m + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        // Gustavson's algorithm with a dense accumulator row.
        let mut acc = vec![0.0f64; n];
        let mut touched: Vec<usize> = Vec::new();
        let mut flops = 0u64;
        for i in 0..m {
            for ka in self.row_ptr[i]..self.row_ptr[i + 1] {
                let k = self.col_idx[ka];
                let av = self.values[ka];
                for kb in other.row_ptr[k]..other.row_ptr[k + 1] {
                    let j = other.col_idx[kb];
                    if acc[j] == 0.0 && !touched.contains(&j) {
                        touched.push(j);
                    }
                    acc[j] += av * other.values[kb];
                    flops += 2;
                }
            }
            touched.sort_unstable();
            for &j in &touched {
                if acc[j].abs() > eps {
                    col_idx.push(j);
                    values.push(acc[j]);
                }
                acc[j] = 0.0;
            }
            touched.clear();
            row_ptr.push(col_idx.len());
        }
        Ok((
            CsrMatrix {
                nrows: m,
                ncols: n,
                row_ptr,
                col_idx,
                values,
            },
            flops,
        ))
    }

    /// `self + alpha·I` (square only), preserving sparsity elsewhere.
    pub fn shift_diag(&self, alpha: f64) -> CsrMatrix {
        assert_eq!(self.nrows, self.ncols, "shift_diag requires square");
        let n = self.nrows;
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..n {
            let mut placed = false;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                if j == i {
                    col_idx.push(j);
                    values.push(self.values[k] + alpha);
                    placed = true;
                } else {
                    if j > i && !placed {
                        col_idx.push(i);
                        values.push(alpha);
                        placed = true;
                    }
                    col_idx.push(j);
                    values.push(self.values[k]);
                }
            }
            if !placed {
                col_idx.push(i);
                values.push(alpha);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Involutority residual `‖self·self − I‖_F / √n` computed from an
    /// already-formed square `self2 = self·self`.
    #[allow(clippy::needless_range_loop)] // CSR row walk needs the row index
    fn involutority_of_square(square: &CsrMatrix) -> f64 {
        let n = square.nrows;
        let mut ssq = 0.0f64;
        let mut diag_seen = vec![false; n];
        for i in 0..n {
            for k in square.row_ptr[i]..square.row_ptr[i + 1] {
                let j = square.col_idx[k];
                let r = if i == j {
                    diag_seen[i] = true;
                    square.values[k] - 1.0
                } else {
                    square.values[k]
                };
                ssq += r * r;
            }
        }
        for seen in diag_seen {
            if !seen {
                ssq += 1.0; // missing diagonal element contributes (0−1)²
            }
        }
        (ssq / n.max(1) as f64).sqrt()
    }
}

/// Report of an element-wise sparse sign iteration.
#[derive(Debug, Clone)]
pub struct SparseSignResult {
    /// The (sparse) sign iterate converted back to dense for extraction.
    pub sign: Matrix,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was reached.
    pub converged: bool,
    /// Total scalar flops spent in sparse multiplications.
    pub flops: u64,
    /// Element fill of the final iterate.
    pub final_fill: f64,
}

/// Element-wise sparse Newton–Schulz/Padé sign iteration (paper Sec. V-C's
/// proposed improvement). `eps` filters iterate elements after every
/// multiplication; `order` ≥ 2 selects the Padé order (2 = Newton–Schulz).
pub fn sparse_sign_iteration(
    a: &Matrix,
    mu: f64,
    order: usize,
    eps: f64,
    tol: f64,
    max_iter: usize,
) -> Result<SparseSignResult, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            op: "sparse_sign_iteration",
            shape: a.shape(),
        });
    }
    let n = a.nrows();
    let coeffs = pade_coefficients(order);

    let mut shifted = a.clone();
    shifted.shift_diag(-mu);
    let bound = spectral_bound(&shifted);
    if bound > 0.0 {
        shifted.scale(1.0 / bound);
    }
    let mut x = CsrMatrix::from_dense(&shifted, eps);

    let mut flops = 0u64;
    let mut converged = false;
    let mut iterations = 0;
    for _ in 0..max_iter {
        iterations += 1;
        let (y, f1) = x.multiply_filtered(&x, eps)?;
        flops += f1;
        let residual = CsrMatrix::involutority_of_square(&y);
        if residual <= tol {
            converged = true;
            break;
        }
        // E = I − Y; P(E) by Horner in CSR.
        let mut e = y;
        e.scale(-1.0);
        let e = e.shift_diag(1.0);
        let mut p = CsrMatrix::identity(n);
        p.scale(coeffs[order - 1]);
        for ci in (0..order - 1).rev() {
            let (pe, f) = p.multiply_filtered(&e, eps)?;
            flops += f;
            p = pe.shift_diag(coeffs[ci]);
        }
        let (next, f2) = x.multiply_filtered(&p, eps)?;
        flops += f2;
        x = next;
    }

    Ok(SparseSignResult {
        final_fill: x.fill(),
        sign: x.to_dense(),
        iterations,
        converged,
        flops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sign::sign_eig;

    fn banded_gapped(n: usize, half: usize) -> Matrix {
        let mut a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                if i % 2 == 0 {
                    1.0
                } else {
                    -1.0
                }
            } else if (i as isize - j as isize).unsigned_abs() <= half {
                0.08 / (1.0 + (i as f64 - j as f64).abs())
            } else {
                0.0
            }
        });
        a.symmetrize();
        a
    }

    #[test]
    fn csr_roundtrip() {
        let a = banded_gapped(10, 2);
        let s = CsrMatrix::from_dense(&a, 0.0);
        assert!(s.to_dense().allclose(&a, 0.0));
        assert_eq!(s.shape(), (10, 10));
        // Banded: much fewer than n² nonzeros.
        assert!(s.fill() < 0.6);
    }

    #[test]
    fn from_dense_filters() {
        let a = Matrix::from_row_major(2, 2, &[1.0, 1e-12, -1e-12, 2.0]);
        let s = CsrMatrix::from_dense(&a, 1e-9);
        assert_eq!(s.nnz(), 2);
    }

    #[test]
    fn identity_and_shift() {
        let i = CsrMatrix::identity(4);
        assert!(i.to_dense().allclose(&Matrix::identity(4), 0.0));
        let shifted = i.shift_diag(1.5);
        let mut expect = Matrix::identity(4);
        expect.scale(2.5);
        assert!(shifted.to_dense().allclose(&expect, 0.0));
    }

    #[test]
    fn shift_diag_creates_missing_diagonal() {
        // Off-diagonal-only matrix.
        let a = Matrix::from_row_major(3, 3, &[0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        let s = CsrMatrix::from_dense(&a, 0.0);
        let shifted = s.shift_diag(2.0);
        let mut expect = a.clone();
        expect.shift_diag(2.0);
        assert!(shifted.to_dense().allclose(&expect, 0.0));
    }

    #[test]
    fn multiply_matches_dense() {
        let a = banded_gapped(12, 3);
        let b = banded_gapped(12, 2).transpose();
        let sa = CsrMatrix::from_dense(&a, 0.0);
        let sb = CsrMatrix::from_dense(&b, 0.0);
        let (c, flops) = sa.multiply_filtered(&sb, 0.0).unwrap();
        let expect = crate::gemm::matmul(&a, &b).unwrap();
        assert!(c.to_dense().allclose(&expect, 1e-13));
        assert!(flops > 0);
        // Sparse flops strictly below dense 2n³.
        assert!(flops < 2 * 12u64.pow(3));
    }

    #[test]
    fn multiply_filtering_drops_small_results() {
        let a = banded_gapped(10, 1);
        let s = CsrMatrix::from_dense(&a, 0.0);
        let (loose, _) = s.multiply_filtered(&s, 1e-2).unwrap();
        let (tight, _) = s.multiply_filtered(&s, 0.0).unwrap();
        assert!(loose.nnz() < tight.nnz());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = CsrMatrix::identity(3);
        let b = CsrMatrix::from_dense(&Matrix::zeros(4, 4), 0.0);
        assert!(a.multiply_filtered(&b, 0.0).is_err());
    }

    #[test]
    fn sparse_sign_matches_dense_reference() {
        let a = banded_gapped(16, 2);
        let r = sparse_sign_iteration(&a, 0.0, 2, 1e-12, 1e-10, 100).unwrap();
        assert!(r.converged, "sparse NS did not converge");
        let expect = sign_eig(&a).unwrap();
        assert!(
            r.sign.allclose(&expect, 1e-6),
            "max diff {}",
            r.sign.max_abs_diff(&expect)
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Deterministic pseudo-random matrix with an exact-zero mask —
        /// `density` out of 8 entries survive; values avoid the filter
        /// thresholds so "kept vs dropped" is never a borderline call.
        fn sparse_matrix(rows: usize, cols: usize, seed: usize, density: usize) -> Matrix {
            Matrix::from_fn(rows, cols, |i, j| {
                let h = (i * 31 + j * 17 + seed * 7) % 8;
                if h < density {
                    let v = 1 + (i * 13 + j * 29 + seed * 5) % 9;
                    let s = if (i + j + seed).is_multiple_of(2) {
                        1.0
                    } else {
                        -1.0
                    };
                    s * v as f64 / 4.0
                } else {
                    0.0
                }
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn from_dense_to_dense_roundtrips_bitwise_at_eps_zero(
                rows in 1usize..14,
                cols in 1usize..14,
                seed in 0usize..64,
                density in 1usize..9,
            ) {
                let a = sparse_matrix(rows, cols, seed, density);
                let s = CsrMatrix::from_dense(&a, 0.0);
                // `eps = 0` keeps every nonzero: the round trip is exact,
                // and the stored count is exactly the nonzero count.
                prop_assert!(s.to_dense().allclose(&a, 0.0));
                let nnz_expect = (0..rows)
                    .flat_map(|i| (0..cols).map(move |j| (i, j)))
                    .filter(|&(i, j)| a[(i, j)] != 0.0)
                    .count();
                prop_assert_eq!(s.nnz(), nnz_expect);
                prop_assert_eq!(s.shape(), (rows, cols));
            }

            #[test]
            fn eps_zero_filtered_multiply_is_exact(
                n in 1usize..12,
                k in 1usize..12,
                m in 1usize..12,
                seed in 0usize..64,
            ) {
                let a = sparse_matrix(n, k, seed, 5);
                let b = sparse_matrix(k, m, seed + 101, 5);
                let sa = CsrMatrix::from_dense(&a, 0.0);
                let sb = CsrMatrix::from_dense(&b, 0.0);
                let (c, flops) = sa.multiply_filtered(&sb, 0.0).unwrap();
                let expect = crate::gemm::matmul(&a, &b).unwrap();
                // Gustavson accumulates each output entry in the same
                // ascending-k order as the dense kernel, skipping only
                // exact-zero terms — `eps = 0` filtering is exact, not
                // merely close.
                prop_assert!(
                    c.to_dense().allclose(&expect, 0.0),
                    "eps=0 product deviates by {}",
                    c.to_dense().max_abs_diff(&expect)
                );
                // Flop count is exactly two per surviving product term.
                let terms: u64 = (0..n)
                    .flat_map(|i| (0..m).map(move |j| (i, j)))
                    .map(|(i, j)| {
                        (0..k)
                            .filter(|&kk| a[(i, kk)] != 0.0 && b[(kk, j)] != 0.0)
                            .count() as u64
                    })
                    .sum();
                prop_assert_eq!(flops, 2 * terms);
            }
        }
    }

    #[test]
    fn sparse_pade3_matches_too() {
        let a = banded_gapped(12, 2);
        let r = sparse_sign_iteration(&a, 0.0, 3, 1e-12, 1e-10, 100).unwrap();
        assert!(r.converged);
        let expect = sign_eig(&a).unwrap();
        assert!(r.sign.allclose(&expect, 1e-6));
    }

    #[test]
    fn filtering_saves_flops_at_accuracy_cost() {
        let a = banded_gapped(24, 2);
        let tight = sparse_sign_iteration(&a, 0.0, 2, 1e-13, 1e-9, 100).unwrap();
        let loose = sparse_sign_iteration(&a, 0.0, 2, 1e-4, 1e-3, 100).unwrap();
        assert!(
            loose.flops < tight.flops,
            "looser filter must save flops: {} vs {}",
            loose.flops,
            tight.flops
        );
        let expect = sign_eig(&a).unwrap();
        let err_tight = tight.sign.max_abs_diff(&expect);
        let err_loose = loose.sign.max_abs_diff(&expect);
        assert!(err_tight <= err_loose + 1e-12);
    }

    #[test]
    fn mu_shift_respected() {
        let a = Matrix::from_diag(&[0.0, 1.0, 2.0, 3.0]);
        let r = sparse_sign_iteration(&a, 1.5, 2, 1e-14, 1e-10, 100).unwrap();
        let expect = Matrix::from_diag(&[-1.0, -1.0, 1.0, 1.0]);
        assert!(r.sign.allclose(&expect, 1e-8));
    }

    #[test]
    fn final_fill_reported() {
        let a = banded_gapped(20, 2);
        let r = sparse_sign_iteration(&a, 0.0, 2, 1e-6, 1e-5, 100).unwrap();
        assert!(r.final_fill > 0.0 && r.final_fill <= 1.0);
    }
}
