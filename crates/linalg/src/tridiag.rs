//! Householder reduction of a real symmetric matrix to tridiagonal form.
//!
//! This is the first stage of the `dsyevd`-equivalent eigensolver used to
//! evaluate `sign(A) = Q sign(Λ) Q^T` on dense submatrices (paper Eq. 17).
//! The algorithm is the classic EISPACK `tred2`: successive Householder
//! reflections annihilate one row/column at a time while the orthogonal
//! transformation matrix is accumulated.

use crate::matrix::Matrix;
use crate::LinalgError;

/// Result of a Householder tridiagonalization `A = Q T Q^T`.
#[derive(Debug, Clone)]
pub struct Tridiagonal {
    /// Orthogonal accumulation matrix `Q` (n×n).
    pub q: Matrix,
    /// Diagonal of `T` (length n).
    pub d: Vec<f64>,
    /// Sub-diagonal of `T` (length n, entry 0 is unused and set to 0).
    pub e: Vec<f64>,
}

/// Reduce a symmetric matrix to tridiagonal form, accumulating `Q`.
///
/// Only the lower triangle of `a` is referenced, mirroring LAPACK's
/// `uplo = 'L'` convention. Returns an error if `a` is not square.
pub fn tred2(a: &Matrix) -> Result<Tridiagonal, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            op: "tred2",
            shape: a.shape(),
        });
    }
    let n = a.nrows();
    // Work on a symmetrized copy: the algorithm reads both triangles.
    let mut z = a.clone();
    z.symmetrize();
    let mut d = vec![0.0f64; n];
    let mut e = vec![0.0f64; n];

    if n == 0 {
        return Ok(Tridiagonal { q: z, d, e });
    }

    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0f64;
        if l > 0 {
            let mut scale = 0.0f64;
            for k in 0..=l {
                scale += z[(i, k)].abs();
            }
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                let mut f_acc = 0.0f64;
                for j in 0..=l {
                    // Store u/H in column i for the accumulation phase.
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g2 = 0.0f64;
                    for k in 0..=j {
                        g2 += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g2 += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g2 / h;
                    f_acc += e[j] * z[(i, j)];
                }
                let hh = f_acc / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let g2 = e[j] - hh * f;
                    e[j] = g2;
                    for k in 0..=j {
                        let delta = f * e[k] + g2 * z[(i, k)];
                        z[(j, k)] -= delta;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }

    d[0] = 0.0;
    e[0] = 0.0;

    // Accumulate the Householder transformations into Q (stored in z).
    for i in 0..n {
        if d[i] != 0.0 {
            // i >= 1 here because d[0] == 0.
            let l = i - 1;
            for j in 0..=l {
                let mut g = 0.0f64;
                for k in 0..=l {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..=l {
                    z[(k, j)] -= g * z[(k, i)];
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        if i > 0 {
            for j in 0..i {
                z[(j, i)] = 0.0;
                z[(i, j)] = 0.0;
            }
        }
    }

    Ok(Tridiagonal { q: z, d, e })
}

impl Tridiagonal {
    /// Reconstruct the dense tridiagonal matrix `T` (mostly for testing).
    pub fn t_matrix(&self) -> Matrix {
        let n = self.d.len();
        let mut t = Matrix::zeros(n, n);
        for i in 0..n {
            t[(i, i)] = self.d[i];
            if i > 0 {
                t[(i, i - 1)] = self.e[i];
                t[(i - 1, i)] = self.e[i];
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, matmul_tn};
    use crate::norms::fro_norm;

    fn sym_test_matrix(n: usize) -> Matrix {
        let mut a = Matrix::from_fn(n, n, |i, j| {
            ((i * 31 + j * 17) % 13) as f64 * 0.1 + if i == j { 2.0 } else { 0.0 }
        });
        a.symmetrize();
        a
    }

    #[test]
    fn q_is_orthogonal() {
        let a = sym_test_matrix(12);
        let tri = tred2(&a).unwrap();
        let qtq = matmul_tn(&tri.q, &tri.q).unwrap();
        assert!(qtq.allclose(&Matrix::identity(12), 1e-12));
    }

    #[test]
    fn reconstruction_qtqt_equals_a() {
        let a = sym_test_matrix(10);
        let tri = tred2(&a).unwrap();
        let t = tri.t_matrix();
        let qt = matmul(&tri.q, &t).unwrap();
        let back = matmul(&qt, &tri.q.transpose()).unwrap();
        assert!(
            back.allclose(&a, 1e-11),
            "reconstruction error {}",
            fro_norm(&back.sub(&a).unwrap())
        );
    }

    #[test]
    fn already_tridiagonal_input() {
        let mut a = Matrix::zeros(5, 5);
        for i in 0..5 {
            a[(i, i)] = (i + 1) as f64;
            if i > 0 {
                a[(i, i - 1)] = 0.5;
                a[(i - 1, i)] = 0.5;
            }
        }
        let tri = tred2(&a).unwrap();
        let back = matmul(
            &matmul(&tri.q, &tri.t_matrix()).unwrap(),
            &tri.q.transpose(),
        )
        .unwrap();
        assert!(back.allclose(&a, 1e-12));
    }

    #[test]
    fn diagonal_input_is_fixed_point() {
        let a = Matrix::from_diag(&[3.0, 1.0, -2.0]);
        let tri = tred2(&a).unwrap();
        assert!((tri.d[0] - 3.0).abs() < 1e-15);
        assert!((tri.d[1] - 1.0).abs() < 1e-15);
        assert!((tri.d[2] + 2.0).abs() < 1e-15);
        assert!(tri.e.iter().all(|&x| x.abs() < 1e-15));
    }

    #[test]
    fn one_by_one_and_empty() {
        let a = Matrix::from_diag(&[7.0]);
        let tri = tred2(&a).unwrap();
        assert_eq!(tri.d, vec![7.0]);
        let a0 = Matrix::zeros(0, 0);
        let tri0 = tred2(&a0).unwrap();
        assert!(tri0.d.is_empty());
    }

    #[test]
    fn two_by_two() {
        let a = Matrix::from_row_major(2, 2, &[2.0, 1.0, 1.0, 3.0]);
        let tri = tred2(&a).unwrap();
        let back = matmul(
            &matmul(&tri.q, &tri.t_matrix()).unwrap(),
            &tri.q.transpose(),
        )
        .unwrap();
        assert!(back.allclose(&a, 1e-13));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            tred2(&a),
            Err(LinalgError::NotSquare { op: "tred2", .. })
        ));
    }
}
