//! Batched multi-job execution over one shared engine.
//!
//! A production density-matrix service sees many concurrent requests:
//! different systems, different sizes, different ensembles and solvers —
//! often with *recurring* sparsity patterns (the same system resubmitted
//! every SCF/MD step). [`JobQueue`] runs such a batch through a single
//! [`SubmatrixEngine`]:
//!
//! 1. **Symbolic pass**: every job's pattern is fingerprinted and planned
//!    through the shared cache, so recurring patterns are planned once for
//!    the whole batch (and for all future batches on the same queue).
//! 2. **Numeric pass**: jobs execute over the shared pool, scheduled
//!    longest-plan-first (LPT) so a trailing giant job cannot serialize
//!    the batch tail.
//!
//! Results return in submission order with per-job [`EngineReport`]s.
//!
//! This module also defines the scheduler's **job-kind abstraction**:
//! [`BatchJob`] generalizes "one engine execute" ([`MatrixJob`]) to
//! "iterative job with per-iteration cost re-estimation"
//! ([`ScfJobSpec`], a whole SCF loop), and [`ScfTelemetry`] carries the
//! per-iteration observables back through [`JobResult::scf`].

use std::sync::Arc;
use std::time::Instant;

use rayon::prelude::*;

use sm_chem::ScfOptions;
use sm_comsim::SerialComm;
use sm_core::engine::{EngineOptions, EngineReport, NumericOptions, SubmatrixEngine};
use sm_dbcsr::{ops, DbcsrMatrix};

/// Which matrix function a job computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutput {
    /// `sign(K̃ − µI)`.
    Sign,
    /// `D̃ = (I − sign(K̃ − µI)) / 2`.
    Density,
}

impl JobOutput {
    /// Turn the engine's sign output into this job's requested function,
    /// in place. The single definition both the serial queue and the
    /// distributed scheduler apply — the bitwise-equivalence contract
    /// between the two paths depends on them sharing it.
    ///
    /// A plain-`Fp32` job's deliverable is single-precision end to end:
    /// the finalized blocks are rounded back through `f32` storage, so the
    /// scheduler's `f32` result gather is lossless and the serial queue
    /// produces the identical bits. (`Fp32Refined` results stay `f64` —
    /// the refinement's accuracy is the product.)
    pub fn finalize(&self, sign: &mut DbcsrMatrix, precision: sm_linalg::Precision) {
        if *self == JobOutput::Density {
            ops::scale(sign, -0.5);
            ops::shift_diag(sign, 0.5);
        }
        if precision == sm_linalg::Precision::Fp32 {
            for (_, blk) in sign.store_mut().iter_mut() {
                *blk = blk.round_f32_storage();
            }
        }
    }
}

/// One matrix-function request.
#[derive(Debug, Clone)]
pub struct MatrixJob {
    /// Caller-chosen identifier, echoed in the result.
    pub name: String,
    /// The (single-rank) input matrix.
    pub matrix: DbcsrMatrix,
    /// Chemical potential the evaluation starts from.
    pub mu0: f64,
    /// Numeric-phase options (solver, ensemble, selected columns).
    pub numeric: NumericOptions,
    /// Requested function.
    pub output: JobOutput,
}

impl MatrixJob {
    /// Convenience constructor for a density job with default numerics.
    pub fn density(name: impl Into<String>, matrix: DbcsrMatrix, mu0: f64) -> Self {
        MatrixJob {
            name: name.into(),
            matrix,
            mu0,
            numeric: NumericOptions::default(),
            output: JobOutput::Density,
        }
    }
}

/// One self-consistent-field problem submitted to the batched SCF service
/// ([`ScfService`](crate::scf_service::ScfService)): the system (its
/// orthogonalized Kohn–Sham matrix), the chemical data, and the full SCF
/// configuration. The scheduler runs the whole multi-iteration
/// [`sm_chem::ScfDriver`] loop as one job on a per-job subcommunicator.
#[derive(Debug, Clone)]
pub struct ScfJobSpec {
    /// Caller-chosen identifier, echoed in the result.
    pub name: String,
    /// The system: its orthogonalized Kohn–Sham matrix `K̃₀` as a
    /// (single-rank, replicated) handle; the scheduler redistributes it
    /// over the job's group.
    pub kt0: DbcsrMatrix,
    /// Seed chemical potential (the *fixed* µ for grand-canonical specs).
    pub mu0: f64,
    /// Electron target of the canonical ensemble (and of the model
    /// feedback's average occupation in both ensembles).
    pub n_electrons: f64,
    /// Full SCF configuration: convergence knobs, model feedback, the
    /// driver-level [`sm_chem::ScfEnsemble`] selector, and
    /// [`NumericOptions`] (solver, precision). `scf.engine` is ignored —
    /// the service's shared engine governs the symbolic phase.
    pub scf: ScfOptions,
    /// Iteration count the cost model should assume when sizing this
    /// job's rank group (`None` = the full `scf.max_iter` budget). The
    /// scheduler estimates a *per-iteration* cost from the sparsity
    /// pattern and multiplies by this figure, so callers that know a
    /// system converges quickly can keep its group small.
    pub expected_iterations: Option<usize>,
}

impl ScfJobSpec {
    /// Convenience constructor with default SCF options.
    pub fn new(name: impl Into<String>, kt0: DbcsrMatrix, mu0: f64, n_electrons: f64) -> Self {
        ScfJobSpec {
            name: name.into(),
            kt0,
            mu0,
            n_electrons,
            scf: ScfOptions::default(),
            expected_iterations: None,
        }
    }

    /// The iteration count the scheduler's cost model assumes.
    pub fn iteration_budget(&self) -> usize {
        self.expected_iterations.unwrap_or(self.scf.max_iter).max(1)
    }
}

/// The scheduler's job abstraction: either a single engine execution
/// (one matrix-function evaluation) or an iterative multi-evaluation job
/// (a whole SCF loop). Cost estimation, group placement, epoch stealing,
/// result gathering and telemetry are shared; only the per-group
/// execution body differs.
#[derive(Debug, Clone)]
pub enum BatchJob {
    /// One matrix-function evaluation (`sign`/`density`).
    Matrix(MatrixJob),
    /// One multi-iteration SCF run driven by [`sm_chem::ScfDriver`] on
    /// the job's subcommunicator group.
    Scf(ScfJobSpec),
}

impl BatchJob {
    /// The job's identifier.
    pub fn name(&self) -> &str {
        match self {
            BatchJob::Matrix(j) => &j.name,
            BatchJob::Scf(j) => &j.name,
        }
    }

    /// The (single-rank, replicated) input matrix handle — the source of
    /// the sparsity pattern the cost model estimates from, and of the
    /// blocks the scheduler scatters over the job's group.
    pub fn input(&self) -> &DbcsrMatrix {
        match self {
            BatchJob::Matrix(j) => &j.matrix,
            BatchJob::Scf(j) => &j.kt0,
        }
    }

    /// How many engine evaluations the cost model should assume: 1 for a
    /// one-shot matrix job, the iteration budget for an SCF job (each
    /// iteration replays the same cached plan, so total cost scales
    /// linearly in the iteration count).
    pub fn iteration_budget(&self) -> usize {
        match self {
            BatchJob::Matrix(_) => 1,
            BatchJob::Scf(j) => j.iteration_budget(),
        }
    }
}

/// Per-iteration SCF telemetry of one [`BatchJob::Scf`] job, threaded
/// from the group that ran the loop back to world rank 0 alongside the
/// engine report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScfTelemetry {
    /// SCF iterations performed.
    pub iterations: usize,
    /// True if `|ΔE|` dropped below the spec's tolerance in budget.
    pub converged: bool,
    /// Band-structure energy of the final iteration.
    pub final_energy: f64,
    /// Electron count of the final iteration.
    pub final_electrons: f64,
    /// Group-summed gather value-payload bytes, per iteration (length =
    /// `iterations`; deterministic, halves under the `Fp32*` wire).
    pub gather_value_bytes: Vec<u64>,
    /// Group-summed scatter value-payload bytes, per iteration.
    pub scatter_value_bytes: Vec<u64>,
}

/// Outcome of one job. Produced by both the serial [`JobQueue`] and the
/// distributed [`Scheduler`](crate::sched::Scheduler) with the same
/// telemetry semantics, so the two paths are directly comparable.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's identifier.
    pub name: String,
    /// The computed matrix (input pattern preserved).
    pub result: DbcsrMatrix,
    /// Numeric-phase instrumentation; `plan_cached` tells whether this
    /// job's symbolic phase was amortized.
    pub report: EngineReport,
    /// Wall-clock seconds of this job end to end: symbolic phase (zero on
    /// a cache hit), numeric phase, and — on the distributed path — the
    /// result gather to the group root.
    pub seconds: f64,
    /// Ranks that executed this job (1 on the serial queue).
    pub group_size: usize,
    /// Bytes moved within the job's communicator group (0 on the serial
    /// queue — a single rank sends nothing).
    pub comm_bytes: u64,
    /// Messages sent within the job's communicator group.
    pub comm_msgs: u64,
    /// Scheduler epoch this job executed in (0 on the serial queue and on
    /// single-epoch schedules).
    pub epoch: usize,
    /// Ranks of this job's executing group that were re-dealt from other
    /// groups' static allocations by the epoch steal plan (0 = the job ran
    /// on its home group; always 0 on the serial queue).
    pub stolen_ranks: usize,
    /// Execution attempts this job consumed (1 = the first attempt
    /// succeeded; always 1 on the serial queue and the fault-free
    /// scheduler; > 1 only when fault injection poisoned earlier
    /// attempts).
    pub attempts: usize,
    /// True when the job exhausted its retry budget under fault injection
    /// and was quarantined instead of completed: [`result`](Self::result)
    /// is then an empty matrix and [`report`](Self::report) carries no
    /// work. Never true on the serial queue.
    pub quarantined: bool,
    /// Per-iteration SCF telemetry — `Some` exactly for [`BatchJob::Scf`]
    /// jobs, whose [`report`](JobResult::report) is then the whole-run
    /// aggregate across iterations.
    pub scf: Option<ScfTelemetry>,
}

impl JobResult {
    /// Whether this job's plan came from the shared cache (no symbolic
    /// work was performed on its behalf).
    pub fn plan_cached(&self) -> bool {
        self.report.plan_cached
    }

    /// The numeric precision this job ran in (from the engine report).
    pub fn precision(&self) -> sm_linalg::Precision {
        self.report.precision
    }

    /// Whether this job executed on rank capacity stolen from another
    /// group's static allocation (never true on the serial queue).
    pub fn was_stolen(&self) -> bool {
        self.stolen_ranks > 0
    }

    /// Deterministic value-payload bytes this job moved over the wire
    /// (group-summed gather + scatter; 0 on the serial queue). Under
    /// `Precision::Fp32` this is exactly half the `Fp64` figure for the
    /// same job on the same group — the mixed-precision bandwidth win,
    /// measurable without wall clocks.
    pub fn value_bytes(&self) -> u64 {
        self.report.gather_value_bytes + self.report.scatter_value_bytes
    }
}

/// Batch executor over one shared [`SubmatrixEngine`].
pub struct JobQueue {
    engine: Arc<SubmatrixEngine>,
}

impl Default for JobQueue {
    fn default() -> Self {
        // Job-level parallelism supplies the concurrency; keep per-job
        // solves sequential to avoid nested-pool oversubscription.
        JobQueue::new(Arc::new(SubmatrixEngine::new(EngineOptions {
            parallel: false,
            ..EngineOptions::default()
        })))
    }
}

impl JobQueue {
    /// Build a queue over an existing engine (sharing its plan cache).
    pub fn new(engine: Arc<SubmatrixEngine>) -> Self {
        JobQueue { engine }
    }

    /// The shared engine (e.g. to inspect [`SubmatrixEngine::stats`]).
    pub fn engine(&self) -> &Arc<SubmatrixEngine> {
        &self.engine
    }

    /// Run a batch. Jobs execute concurrently over the shared pool in
    /// longest-plan-first order; results return in submission order.
    pub fn run(&self, jobs: Vec<MatrixJob>) -> Vec<JobResult> {
        // Symbolic pass (sequential): fingerprint + plan through the
        // shared cache. Recurring patterns plan once; each job remembers
        // whether it was the one that paid for the build, and what the
        // planning (or cache probe) cost it in wall time.
        let comm = SerialComm::new();
        let plans: Vec<_> = jobs
            .iter()
            .map(|j| {
                assert_eq!(
                    j.matrix.grid().size(),
                    1,
                    "job matrices must be single-rank (replicated) handles"
                );
                let t = Instant::now();
                let (plan, built) = self.engine.plan_for_matrix_traced(&j.matrix, &comm);
                (plan, built, t.elapsed().as_secs_f64())
            })
            .collect();

        // LPT schedule: heaviest plans first. `total_cmp` keeps the sort
        // total even if a degenerate pattern produced a NaN cost.
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| plans[b].0.total_cost.total_cmp(&plans[a].0.total_cost));

        // Numeric pass. Exactly one level supplies the parallelism: if the
        // engine's per-job solves are parallel, jobs run sequentially;
        // otherwise jobs fan out over the shared pool. This keeps either
        // configuration from nesting pools and oversubscribing the
        // machine.
        let engine = &self.engine;
        let jobs_ref = &jobs;
        let plans_ref = &plans;
        let run_one = |&i: &usize| {
            let job = &jobs_ref[i];
            let (plan, built_now, plan_seconds) = &plans_ref[i];
            let comm = SerialComm::new();
            let t = Instant::now();
            let (mut result, mut report) =
                engine.execute(plan, &job.matrix, job.mu0, &job.numeric, &comm);
            job.output.finalize(&mut result, job.numeric.precision);
            report.record_planning(*built_now, plan);
            (
                i,
                JobResult {
                    name: job.name.clone(),
                    result,
                    report,
                    seconds: plan_seconds + t.elapsed().as_secs_f64(),
                    group_size: 1,
                    comm_bytes: 0,
                    comm_msgs: 0,
                    epoch: 0,
                    stolen_ranks: 0,
                    attempts: 1,
                    quarantined: false,
                    scf: None,
                },
            )
        };
        let mut finished: Vec<(usize, JobResult)> = if engine.options().parallel {
            order.iter().map(run_one).collect()
        } else {
            order.par_iter().map(run_one).collect()
        };
        finished.sort_by_key(|(i, _)| *i);
        finished.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_core::engine::Ensemble;
    use sm_core::method::{submatrix_density, submatrix_sign, SubmatrixOptions};
    use sm_core::solver::{SignMethod, SolveOptions};
    use sm_dbcsr::BlockedDims;
    use sm_linalg::Matrix;

    fn banded(nb: usize, bs: usize, scale: f64) -> (Matrix, BlockedDims) {
        let dims = BlockedDims::uniform(nb, bs);
        let n = dims.n();
        let mut dense = Matrix::from_fn(n, n, |i, j| {
            let bi = (i / bs) as isize;
            let bj = (j / bs) as isize;
            if (bi - bj).abs() > 1 {
                0.0
            } else if i == j {
                if i % 2 == 0 {
                    scale
                } else {
                    -scale
                }
            } else {
                0.05 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        dense.symmetrize();
        (dense, dims)
    }

    fn job_matrix(nb: usize, bs: usize, scale: f64) -> DbcsrMatrix {
        let (dense, dims) = banded(nb, bs, scale);
        DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0)
    }

    #[test]
    fn mixed_batch_matches_one_shot_drivers() {
        let comm = SerialComm::new();
        let queue = JobQueue::default();
        let jobs = vec![
            MatrixJob::density("small-density", job_matrix(4, 2, 1.0), 0.0),
            MatrixJob {
                name: "large-sign".into(),
                matrix: job_matrix(10, 3, 1.2),
                mu0: 0.1,
                numeric: NumericOptions::default(),
                output: JobOutput::Sign,
            },
            MatrixJob {
                name: "newton-schulz".into(),
                matrix: job_matrix(6, 2, 1.4),
                mu0: 0.0,
                numeric: NumericOptions {
                    solve: SolveOptions {
                        method: SignMethod::NewtonSchulz,
                        ..SolveOptions::default()
                    },
                    ..NumericOptions::default()
                },
                output: JobOutput::Sign,
            },
            MatrixJob {
                name: "canonical".into(),
                matrix: job_matrix(6, 2, 1.0),
                mu0: 0.0,
                numeric: NumericOptions {
                    ensemble: Ensemble::Canonical {
                        n_electrons: 8.0,
                        tol: 1e-8,
                        max_iter: 200,
                    },
                    ..NumericOptions::default()
                },
                output: JobOutput::Density,
            },
        ];
        let inputs = jobs.clone();
        let results = queue.run(jobs);
        assert_eq!(results.len(), 4);
        // Results come back in submission order under LPT scheduling.
        for (job, res) in inputs.iter().zip(&results) {
            assert_eq!(job.name, res.name);
            let opts = SubmatrixOptions {
                solve: job.numeric.solve,
                ensemble: job.numeric.ensemble,
                parallel: false,
                ..SubmatrixOptions::default()
            };
            let expect = match job.output {
                JobOutput::Sign => submatrix_sign(&job.matrix, job.mu0, &opts, &comm).0,
                JobOutput::Density => submatrix_density(&job.matrix, job.mu0, &opts, &comm).0,
            };
            assert!(
                res.result
                    .to_dense(&comm)
                    .allclose(&expect.to_dense(&comm), 0.0),
                "job '{}' deviates from the one-shot driver",
                res.name
            );
        }
    }

    #[test]
    fn recurring_patterns_plan_once_per_batch_and_across_batches() {
        let queue = JobQueue::default();
        let batch = |scale: f64| {
            vec![
                MatrixJob::density("a", job_matrix(5, 2, scale), 0.0),
                MatrixJob::density("b", job_matrix(5, 2, scale * 1.1), 0.0),
                MatrixJob::density("c", job_matrix(8, 2, scale), 0.0),
            ]
        };
        queue.run(batch(1.0));
        let stats = queue.engine().stats();
        assert_eq!(stats.symbolic_builds, 2, "two distinct patterns");
        assert_eq!(stats.cache_hits, 1, "same-pattern job reuses the plan");
        // Second batch with new values, same patterns: zero new plans.
        queue.run(batch(1.3));
        let stats = queue.engine().stats();
        assert_eq!(stats.symbolic_builds, 2);
        assert_eq!(stats.cache_hits, 4);
        assert_eq!(stats.executions, 6);
    }

    #[test]
    fn per_job_reports_expose_amortization() {
        let queue = JobQueue::default();
        let r1 = queue.run(vec![MatrixJob::density("x", job_matrix(4, 2, 1.0), 0.0)]);
        // First sighting of the pattern: this job paid for the plan.
        assert!(!r1[0].report.plan_cached);
        assert!(r1[0].report.symbolic_seconds > 0.0);
        assert!(r1[0].seconds >= 0.0);
        // Same pattern resubmitted (new values): fully amortized.
        let r2 = queue.run(vec![MatrixJob::density("y", job_matrix(4, 2, 1.3), 0.0)]);
        assert!(r2[0].report.plan_cached);
        assert_eq!(r2[0].report.symbolic_seconds, 0.0);
        assert_eq!(queue.engine().stats().symbolic_builds, 1);
    }

    #[test]
    fn empty_batch_is_fine() {
        let queue = JobQueue::default();
        assert!(queue.run(Vec::new()).is_empty());
    }
}
