//! # sm-pipeline — the persistent submatrix-method subsystem
//!
//! Public home of the engine-centric execution model that turns the
//! one-shot submatrix method into a service-shaped component:
//!
//! * [`SubmatrixEngine`] (re-exported from `sm_core::engine`) splits every
//!   evaluation into a one-time **symbolic phase** — `SubmatrixPlan` →
//!   greedy load balance → deduplicated [`RankTransferPlan`] → flat
//!   assembly/extraction index maps — cached under a cheap
//!   [`PatternFingerprint`], and a per-call **numeric phase** that only
//!   gathers values, assembles through the cached maps, solves, adjusts µ,
//!   and scatters. In SCF/MD-style workloads (paper Sec. IV) the pattern is
//!   fixed across iterations, so all symbolic work amortizes to zero. The
//!   plan cache can be **bounded** (`EngineOptions::plan_cache_capacity`):
//!   entries are evicted least-recently-used by `(fingerprint, rank, size)`
//!   key, with hit/miss/eviction counters in `EngineStats` — the policy a
//!   long-running multi-system service needs to keep memory flat.
//! * [`JobQueue`] batches many independent matrix-function jobs — mixed
//!   sizes, ensembles and sign methods — over one shared pool with
//!   longest-job-first scheduling and per-job reports, sharing one plan
//!   cache so identical patterns are planned once across the whole batch.
//! * [`Scheduler`] (module [`sched`]) is the distributed counterpart: it
//!   carves a world of `N` ranks into per-job **subcommunicator groups**
//!   (`sm_comsim::Comm::split`), sizes each group proportionally to the
//!   job's estimated submatrix work (via `sm_accel::perfmodel`), runs each
//!   job's plan/execute collectively on its group over the *same* shared
//!   engine, and gathers results plus per-job comm/compute telemetry back
//!   to world rank 0. Batches run in **epochs**: between waves the world
//!   is re-split (a fresh one-level split, never nested) so ranks whose
//!   group drained are re-dealt onto straggler groups' remaining jobs —
//!   deterministic, estimate-driven work stealing, reported through
//!   `StealStats` and per-job `epoch`/`stolen_ranks` fields
//!   (`StealPolicy::Disabled` restores the static single-epoch schedule).
//!   Grand-canonical jobs are bitwise-identical to the serial queue at
//!   any group size and any steal schedule.
//! * [`ScfService`] (module [`scf_service`]) lifts the scheduler from
//!   one-shot evaluations to whole **chemical systems**: each
//!   [`ScfJobSpec`] is wrapped as an iterative [`BatchJob::Scf`] job — a
//!   full multi-iteration [`sm_chem::ScfDriver`] loop on the job's
//!   subcommunicator — with rank groups sized by *per-iteration* pattern
//!   cost times iteration budget, per-iteration SCF telemetry in
//!   [`JobResult::scf`], and grand-canonical batches bitwise-identical
//!   to a serial loop of driver runs (`scf_service_equivalence` suite).
//! * **Fault injection & epoch-level recovery** (module [`sched`], over
//!   `sm_comsim`'s seeded `FaultPlan`): rank deaths commit at epoch
//!   boundaries through a collective fault consensus, survivors re-split
//!   and re-deal the deferred queue, poisoned attempts retry with
//!   deterministic backoff-in-epochs and quarantine at the retry budget
//!   ([`JobResult::attempts`]/[`JobResult::quarantined`],
//!   [`SchedulerOutcome`]`::fault_stats`). The recovery schedule
//!   ([`plan_recovery`]) is a pure function of (admitted jobs, perfmodel
//!   estimates, committed fault view), so every non-quarantined job stays
//!   bitwise-identical to the fault-free serial queue under any admitted
//!   plan (`fault_equivalence` suite).
//!
//! The one-shot drivers `sm_core::method::{submatrix_sign,
//! submatrix_density}` are thin wrappers over the same engine, so every
//! historical call site already runs on this subsystem.
//!
//! ## Mixed precision
//!
//! A job's `NumericOptions::precision` (`Fp64`/`Fp32`/`Fp32Refined`)
//! selects the dense solve kernels' scalar type *and* the wire encoding of
//! its rank transfers: `Fp32*` gathers (and plain-`Fp32` result scatters)
//! move `f32` value payloads — exactly half the bytes, reported by the
//! deterministic `gather_value_bytes`/`scatter_value_bytes` counters in
//! every [`JobResult`]'s report. Precision is numeric-phase-only: it never
//! enters a plan fingerprint or cache key, so jobs at different precisions
//! share one cached plan, and plain-`Fp32` batches remain bitwise-identical
//! between the serial queue and the scheduler at any world size (the
//! `precision_equivalence` suite pins all three properties).
//!
//! ## Phase contract
//!
//! `plan*` performs **all** pattern-dependent work; `execute` performs
//! **none**. Concretely, `execute` never touches [`CooPattern`] queries,
//! never rebuilds transfer plans, and allocates only the dense scratch the
//! solve itself needs. The `engine_equivalence` property tests pin the
//! numeric phase to the one-shot drivers bitwise; the
//! `ablation_plan_reuse` bench measures the amortization.
//!
//! ## Subcommunicator contract
//!
//! Inside a scheduler group every collective is entered by the group's
//! ranks only; the subgroup's traffic rides a reserved parent-tag
//! namespace (`sm_comsim::SUBGROUP_BIT`), and the wire module's
//! reserved-tag guard (`sm_dbcsr::wire::user_tag`) applies unchanged
//! inside subgroups — user tags must keep both reserved bits clear.
//! Subgroups cannot be split again (the namespace is one level deep).
//!
//! [`RankTransferPlan`]: sm_core::transfers::RankTransferPlan
//! [`PatternFingerprint`]: sm_dbcsr::wire::PatternFingerprint
//! [`CooPattern`]: sm_dbcsr::CooPattern

pub mod jobs;
pub mod scf_service;
pub mod sched;
pub mod service;

pub use jobs::{BatchJob, JobOutput, JobQueue, JobResult, MatrixJob, ScfJobSpec, ScfTelemetry};
pub use scf_service::{serial_scf_loop, ScfOutcomeExt, ScfService};
pub use sched::{
    estimate_batch_job_cost, estimate_job_cost, estimate_pattern_cost, partition, plan_epochs,
    plan_recovery, steal_horizon, Epoch, EpochSchedule, FaultStats, GroupPlan, RankBudget,
    RecoveryAttempt, RecoveryEpoch, RecoveryGroup, RecoverySchedule, SchedError, SchedulePlan,
    Scheduler, SchedulerOutcome, StealPolicy, StealStats, DEFAULT_RETRY_BUDGET,
};
pub use service::{
    Priority, ServiceConfig, ServiceError, ServiceEvent, ServiceRequest, ServiceStats,
    StreamingScfService, WindowOutcome,
};
pub use sm_core::engine::{
    AssemblyMap, EngineOptions, EngineReport, EngineStats, Ensemble, ExecutionPlan, ExtractionMap,
    Grouping, NumericOptions, SubmatrixEngine,
};
