//! Batched multi-system SCF service over the distributed scheduler.
//!
//! A production electronic-structure service does not purify one matrix at
//! a time: it sees a stream of **independent chemical systems** — different
//! geometries, sizes and convergence budgets — each of which needs a whole
//! self-consistent-field *loop*, not a single matrix-function evaluation.
//! [`ScfService`] is that layer. It accepts a batch of [`ScfJobSpec`]s,
//! wraps each one as an iterative [`BatchJob::Scf`] job, and executes the
//! batch through the epoch-stealing [`Scheduler`], so the whole fleet of
//! SCF loops shares:
//!
//! * **one engine and one (optionally bounded) plan cache** — a system
//!   resubmitted across batches, or several specs with the same sparsity
//!   pattern, plan once; every SCF iteration of every system replays a
//!   cached plan through the same LRU policy;
//! * **the perfmodel-weighted LPT/steal machinery** — each spec's rank
//!   group is sized by its *per-iteration* pattern cost times its
//!   iteration budget ([`crate::sched::estimate_batch_job_cost`]), and straggler systems
//!   are re-dealt over drained ranks between epochs exactly like one-shot
//!   jobs;
//! * **the telemetry spine** — every [`JobResult`] carries the whole-run
//!   aggregated engine report plus per-iteration SCF telemetry
//!   ([`JobResult::scf`]: iterations, converged flag, final energy and
//!   electron count, per-iteration gather/scatter value bytes).
//!
//! ## Invariants (see `ARCHITECTURE.md`)
//!
//! The service adds no new collective machinery, so the scheduler's
//! load-bearing invariants carry over unchanged:
//!
//! * **Plan-cache hit/miss consensus stays per-group per-epoch.** An SCF
//!   job re-enters the consensus allreduce once per iteration, always on
//!   its group's current subcommunicator; the accounting identity
//!   extends to `hits + builds = Σ_jobs group_size × iterations`.
//! * **Grand-canonical batches are bitwise-identical to a serial loop of
//!   [`sm_chem::ScfDriver`] runs** at any world size and any
//!   steal schedule: the engine's grand-canonical numeric phase is
//!   bit-reproducible across group sizes and the model feedback touches
//!   only locally-owned diagonal blocks (the `scf_service_equivalence`
//!   suite pins this, mirroring `stealing_equivalence`). One caveat: the
//!   *convergence decision* compares a group-summed energy against `tol`,
//!   so iteration counts agree across group sizes provided no iteration's
//!   `|ΔE|` lands within an ulp of `tol` (the per-iteration densities
//!   themselves are unconditionally bitwise; see the
//!   [`sm_chem::scf`] module docs). Canonical specs bisect µ through
//!   cross-rank reductions and match to reduction accuracy instead.
//!
//! ## Example
//!
//! See `examples/scf_service_batch.rs` for a worked multi-system batch,
//! and [`serial_scf_loop`] for the serial reference the equivalence suite
//! compares against.

use std::sync::Arc;

use sm_chem::{ScfDriver, ScfResult};
use sm_comsim::SerialComm;
use sm_core::engine::SubmatrixEngine;

use crate::jobs::{BatchJob, JobResult, ScfJobSpec};
use crate::sched::{RankBudget, Scheduler, SchedulerOutcome, StealPolicy};

/// Batched multi-system SCF executor: a thin, service-shaped facade over
/// [`Scheduler::run_batch`] that speaks [`ScfJobSpec`]s. See the module
/// docs for what is shared across the batch.
#[derive(Default)]
pub struct ScfService {
    sched: Scheduler,
}

impl ScfService {
    /// Build a service over an existing engine (sharing its plan cache
    /// with any other queue/scheduler on the same engine) and rank-budget
    /// policy. Epoch stealing is on by default; see
    /// [`ScfService::with_policy`].
    pub fn new(engine: Arc<SubmatrixEngine>, budget: RankBudget) -> Self {
        ScfService {
            sched: Scheduler::new(engine, budget),
        }
    }

    /// Set the steal policy (builder style).
    pub fn with_policy(mut self, policy: StealPolicy) -> Self {
        self.sched = self.sched.with_policy(policy);
        self
    }

    /// Set the batch label used as the root span of every trace this
    /// service records (builder style; see
    /// [`Scheduler::with_trace_label`]).
    pub fn with_trace_label(mut self, label: &str) -> Self {
        self.sched = self.sched.with_trace_label(label);
        self
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<SubmatrixEngine> {
        self.sched.engine()
    }

    /// The underlying scheduler (e.g. to mix SCF specs with one-shot
    /// matrix jobs in a single [`Scheduler::run_batch`] call).
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// Run a batch of SCF systems over a `world_size`-rank world; results
    /// gather on world rank 0 in submission order. Each [`JobResult`]'s
    /// `result` is the system's final density matrix, its `report` the
    /// whole-run engine aggregate, and its `scf` field the per-iteration
    /// telemetry.
    pub fn run(&self, world_size: usize, specs: Vec<ScfJobSpec>) -> SchedulerOutcome {
        self.sched
            .run_batch(world_size, specs.into_iter().map(BatchJob::Scf).collect())
    }
}

/// The serial reference the `scf_service_equivalence` suite (and the
/// `ablation_scf_service` bench) compares [`ScfService::run`] against: a
/// plain loop of [`ScfDriver`] runs on a single rank, all sharing one
/// engine — the same amortization surface the service offers, with none
/// of its distribution. Grand-canonical specs must match this loop
/// **bitwise** at any world size; canonical specs to reduction accuracy.
pub fn serial_scf_loop(engine: &Arc<SubmatrixEngine>, specs: &[ScfJobSpec]) -> Vec<ScfResult> {
    let comm = SerialComm::new();
    specs
        .iter()
        .map(|spec| {
            ScfDriver::with_engine(spec.scf.clone(), engine.clone()).run(
                &spec.kt0,
                spec.mu0,
                spec.n_electrons,
                &comm,
            )
        })
        .collect()
}

/// Convenience accessors over a service outcome's per-job results.
pub trait ScfOutcomeExt {
    /// Jobs whose SCF loop converged within its budget.
    fn converged_jobs(&self) -> usize;
    /// Total SCF iterations across the batch.
    fn total_iterations(&self) -> usize;
}

impl ScfOutcomeExt for [JobResult] {
    fn converged_jobs(&self) -> usize {
        self.iter()
            .filter(|r| r.scf.as_ref().is_some_and(|s| s.converged))
            .count()
    }

    fn total_iterations(&self) -> usize {
        self.iter()
            .filter_map(|r| r.scf.as_ref().map(|s| s.iterations))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::MatrixJob;
    use crate::sched::estimate_batch_job_cost;
    use sm_dbcsr::{BlockedDims, DbcsrMatrix};
    use sm_linalg::Matrix;

    fn banded(nb: usize, bs: usize, seed: u64) -> DbcsrMatrix {
        let n = nb * bs;
        let mut dense = Matrix::from_fn(n, n, |i, j| {
            let bi = (i / bs) as isize;
            let bj = (j / bs) as isize;
            if (bi - bj).abs() > 1 {
                0.0
            } else if i == j {
                (if i % 2 == 0 { 1.0 } else { -1.0 }) + ((seed % 13) as f64) * 0.011
            } else {
                0.05 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        dense.symmetrize();
        DbcsrMatrix::from_dense(&dense, BlockedDims::uniform(nb, bs), 0, 1, 0.0)
    }

    fn grand_canonical_spec(name: &str, nb: usize, seed: u64) -> ScfJobSpec {
        let kt0 = banded(nb, 2, seed);
        let n_electrons = kt0.n() as f64; // half filling of the gapped model
        let mut spec = ScfJobSpec::new(name, kt0, 0.0, n_electrons);
        spec.scf.max_iter = 40;
        spec.scf.tol = 1e-7;
        spec.scf.ensemble = sm_chem::ScfEnsemble::GrandCanonical;
        spec
    }

    #[test]
    fn service_runs_a_small_batch_and_reports_scf_telemetry() {
        let specs = vec![
            grand_canonical_spec("a", 6, 1),
            grand_canonical_spec("b", 4, 2),
            grand_canonical_spec("c", 4, 3),
        ];
        let service = ScfService::default();
        let outcome = service.run(3, specs.clone());
        assert_eq!(outcome.results.len(), 3);
        for (spec, r) in specs.iter().zip(&outcome.results) {
            assert_eq!(r.name, spec.name);
            let scf = r.scf.as_ref().expect("SCF jobs carry SCF telemetry");
            assert!(scf.iterations >= 1);
            assert_eq!(scf.gather_value_bytes.len(), scf.iterations);
            assert_eq!(scf.scatter_value_bytes.len(), scf.iterations);
            // The aggregated report sums the per-iteration telemetry.
            assert_eq!(
                r.report.gather_value_bytes,
                scf.gather_value_bytes.iter().sum::<u64>()
            );
        }
        assert_eq!(outcome.results.converged_jobs(), 3);
        assert!(outcome.results.total_iterations() >= 3);
    }

    #[test]
    fn scf_jobs_cost_scales_with_iteration_budget() {
        let spec = grand_canonical_spec("x", 6, 1);
        let one_shot = estimate_batch_job_cost(&BatchJob::Matrix(MatrixJob::density(
            "m",
            spec.kt0.clone(),
            0.0,
        )));
        let budget = spec.iteration_budget() as f64;
        let scf_cost = estimate_batch_job_cost(&BatchJob::Scf(spec));
        assert_eq!(scf_cost, one_shot * budget);
    }
}
