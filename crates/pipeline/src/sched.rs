//! Distributed job scheduler: per-job subcommunicators over a rank world.
//!
//! [`JobQueue`](crate::jobs::JobQueue) runs every job of a batch on a
//! single process; the world's other ranks idle. [`Scheduler`] instead
//! carves a world of `N` ranks into per-job **groups** — subcommunicators
//! obtained from [`Comm::split`] — and runs each job's plan/execute
//! collectively on its group, so independent matrix evaluations proceed
//! concurrently *and* each one can itself be rank-parallel:
//!
//! 1. **Estimate**: every job's submatrix work is estimated from its
//!    sparsity pattern, weighted by `sm_accel::perfmodel`'s utilization
//!    curve (small solves run further from peak, so their FLOPs count for
//!    more wall time).
//! 2. **Partition** ([`partition`]): jobs are packed longest-first onto
//!    `G = min(world, jobs)` groups (classic LPT), then the world's ranks
//!    are dealt to groups proportionally to estimated load (every group
//!    gets at least one rank; [`RankBudget`] can cap group size or count).
//! 3. **Execute**: each group's ranks split off a subcommunicator, scatter
//!    the replicated input across the group, run the shared
//!    [`SubmatrixEngine`]'s plan + execute on it, and gather the result to
//!    the group root.
//! 4. **Gather**: group roots ship each finished job — result blocks in
//!    the `sm_dbcsr::wire` format plus an encoded telemetry record — to
//!    world rank 0, which returns the batch in submission order.
//!
//! The engine is shared across groups, so its plan cache is the contended
//! resource: recurring patterns hit plans built by *other* groups (same
//! `(fingerprint, rank, size)` key), and a bounded cache
//! (`EngineOptions::plan_cache_capacity`) evicts cold plans under
//! multi-tenant traffic.
//!
//! ## Determinism
//!
//! Everything pattern- and schedule-shaping is deterministic, and the
//! numeric path performs the same per-submatrix solves with the same
//! inputs regardless of the group size, so grand-canonical jobs produce
//! **bitwise-identical** results to the serial [`JobQueue`] for any world
//! size (pinned by the `scheduler_equivalence` suite). Canonical-ensemble
//! jobs bisect µ through a cross-rank reduction whose summation order
//! depends on the group size, so they match to floating-point reduction
//! accuracy instead.
//!
//! ## Tags
//!
//! Subgroup traffic rides the parent tag namespace reserved by
//! `sm_comsim::SUBGROUP_BIT`; the only parent-level user traffic is the
//! root gather, on tags derived from the job index (see [`result_tag`]).
//! The `sm_dbcsr::wire::user_tag` guard applies unchanged inside
//! subgroups.

use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

use sm_accel::perfmodel;
use sm_comsim::{run_ranks, Comm, CommStats, Payload, ReduceOp, SerialComm, ThreadComm};
use sm_core::engine::{EngineOptions, EngineReport, SubmatrixEngine};
use sm_core::transfers::TransferStats;
use sm_dbcsr::wire::ValueFormat;
use sm_dbcsr::{wire, DbcsrMatrix};
use sm_linalg::Precision;

use crate::jobs::{JobResult, MatrixJob};

/// Color given to ranks left without a group (only possible when
/// [`RankBudget`] caps shrink the schedule below the world size).
const IDLE_COLOR: u64 = u64::MAX;

/// Subgroup user tags of the per-job result gather to the group root.
/// Safe to reuse across a group's sequential jobs: every send is matched
/// by a blocking recv before the next job starts, and `(src, tag)` order
/// is preserved.
const GATHER_META_TAG: u64 = 11;
const GATHER_DATA_TAG: u64 = 12;

/// Rank-budget policy: how many groups to form and how large each may
/// grow. The default is uncapped — `min(world, jobs)` groups, ranks dealt
/// proportionally to estimated load.
#[derive(Debug, Clone, Copy, Default)]
pub struct RankBudget {
    /// Upper bound on ranks per group (`None` = no cap). With
    /// `world = jobs × k` and a cap of `k`, every group gets exactly `k`
    /// ranks — the knob the equivalence suite uses to pin group sizes.
    pub max_group_size: Option<usize>,
    /// Upper bound on the number of concurrent groups (`None` = no cap).
    pub max_groups: Option<usize>,
}

/// One group of the schedule: which jobs it runs (longest first) on which
/// contiguous world ranks.
#[derive(Debug, Clone)]
pub struct GroupPlan {
    /// Job indices in execution order (descending estimated cost,
    /// submission order breaking ties).
    pub jobs: Vec<usize>,
    /// World ranks forming this group's subcommunicator; `ranks.start` is
    /// the group root.
    pub ranks: Range<usize>,
    /// Total estimated cost of the group's jobs.
    pub est_cost: f64,
}

/// Deterministic work partition produced by [`partition`].
#[derive(Debug, Clone)]
pub struct SchedulePlan {
    /// World size the plan was built for.
    pub world_size: usize,
    /// The groups, in world-rank order.
    pub groups: Vec<GroupPlan>,
    /// Per-job estimated costs (submission order).
    pub job_costs: Vec<f64>,
}

impl SchedulePlan {
    /// The group index a world rank belongs to (`None` = idle).
    pub fn group_of_rank(&self, rank: usize) -> Option<usize> {
        self.groups.iter().position(|g| g.ranks.contains(&rank))
    }

    /// The group index running a job.
    pub fn group_of_job(&self, job: usize) -> usize {
        self.groups
            .iter()
            .position(|g| g.jobs.contains(&job))
            .expect("every job is scheduled on exactly one group")
    }

    /// The world rank acting as a job's group root.
    pub fn root_of_job(&self, job: usize) -> usize {
        self.groups[self.group_of_job(job)].ranks.start
    }
}

/// Estimate one job's submatrix work from its sparsity pattern: for each
/// block column, the induced submatrix dimension `n` costs `2n³` FLOPs
/// (one dense solve), inflated by the perfmodel utilization curve —
/// small matrices run far from peak, so their FLOPs buy more wall time.
/// Pattern-only and cheap; no plan is built.
pub fn estimate_job_cost(job: &MatrixJob) -> f64 {
    let comm = SerialComm::new();
    let pattern = job.matrix.global_pattern(&comm);
    let dims = job.matrix.dims();
    let mut cost = 0.0;
    for bc in 0..dims.nb() {
        let n: usize = pattern.rows_in_col(bc).map(|br| dims.size(br)).sum();
        if n > 0 {
            let flops = 2.0 * (n as f64).powi(3);
            cost += flops / perfmodel::matmul_utilization(1.0, n);
        }
    }
    cost
}

/// Deterministically partition `costs.len()` jobs over `world_size` ranks:
/// longest-job-first packing onto `min(world, jobs)` groups (respecting
/// `budget.max_groups`), then proportional rank allocation (respecting
/// `budget.max_group_size`; every group gets at least one rank; ranks no
/// group may take are left idle).
pub fn partition(costs: &[f64], world_size: usize, budget: &RankBudget) -> SchedulePlan {
    assert!(world_size >= 1, "need at least one rank");
    let n = costs.len();
    if n == 0 {
        return SchedulePlan {
            world_size,
            groups: Vec::new(),
            job_costs: Vec::new(),
        };
    }
    let mut n_groups = world_size.min(n);
    if let Some(mg) = budget.max_groups {
        n_groups = n_groups.min(mg.max(1));
    }

    // Longest job first, submission order breaking ties.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        costs[b]
            .partial_cmp(&costs[a])
            .expect("job costs are finite")
            .then(a.cmp(&b))
    });

    // LPT packing onto the least-loaded group.
    let mut group_jobs: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
    let mut loads = vec![0.0f64; n_groups];
    for &j in &order {
        let g = (0..n_groups)
            .min_by(|&a, &b| loads[a].partial_cmp(&loads[b]).expect("finite"))
            .expect("n_groups >= 1");
        group_jobs[g].push(j);
        loads[g] += costs[j];
    }

    // Proportional rank allocation: start at one rank each, then hand the
    // remaining ranks one at a time to the group with the highest load per
    // rank (lowest index breaking ties), respecting the size cap.
    let cap = budget.max_group_size.unwrap_or(usize::MAX).max(1);
    let mut sizes = vec![1usize; n_groups];
    let mut spare = world_size.saturating_sub(n_groups);
    while spare > 0 {
        let candidate = (0..n_groups).filter(|&g| sizes[g] < cap).max_by(|&a, &b| {
            (loads[a] / sizes[a] as f64)
                .partial_cmp(&(loads[b] / sizes[b] as f64))
                .expect("finite")
                .then(b.cmp(&a)) // prefer the lower group index
        });
        match candidate {
            Some(g) => sizes[g] += 1,
            None => break, // every group capped; leftover ranks idle
        }
        spare -= 1;
    }

    let mut groups = Vec::with_capacity(n_groups);
    let mut start = 0usize;
    for g in 0..n_groups {
        groups.push(GroupPlan {
            jobs: std::mem::take(&mut group_jobs[g]),
            ranks: start..start + sizes[g],
            est_cost: loads[g],
        });
        start += sizes[g];
    }
    SchedulePlan {
        world_size,
        groups,
        job_costs: costs.to_vec(),
    }
}

/// Outcome of one scheduled batch.
pub struct SchedulerOutcome {
    /// Per-job results in submission order (gathered on world rank 0).
    pub results: Vec<JobResult>,
    /// The work partition the batch ran under.
    pub plan: SchedulePlan,
    /// World-level transfer counters (includes all subgroup traffic).
    pub world_stats: Arc<CommStats>,
}

/// Distributed batch executor: a rank world carved into per-job
/// subcommunicator groups over one shared [`SubmatrixEngine`]. See the
/// module docs for the four phases.
pub struct Scheduler {
    engine: Arc<SubmatrixEngine>,
    budget: RankBudget,
}

impl Default for Scheduler {
    fn default() -> Self {
        // Group ranks supply the per-job concurrency; keep per-rank solves
        // sequential to avoid nested-pool oversubscription (the same
        // choice JobQueue::default makes for job-level parallelism).
        Scheduler::new(
            Arc::new(SubmatrixEngine::new(EngineOptions {
                parallel: false,
                ..EngineOptions::default()
            })),
            RankBudget::default(),
        )
    }
}

impl Scheduler {
    /// Build a scheduler over an existing engine (sharing its plan cache,
    /// e.g. with a serial [`JobQueue`](crate::jobs::JobQueue)).
    pub fn new(engine: Arc<SubmatrixEngine>, budget: RankBudget) -> Self {
        Scheduler { engine, budget }
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<SubmatrixEngine> {
        &self.engine
    }

    /// The rank-budget policy.
    pub fn budget(&self) -> &RankBudget {
        &self.budget
    }

    /// Run a batch over a `world_size`-rank world and gather the results
    /// (in submission order) on world rank 0.
    pub fn run(&self, world_size: usize, jobs: Vec<MatrixJob>) -> SchedulerOutcome {
        for j in &jobs {
            assert_eq!(
                j.matrix.grid().size(),
                1,
                "job matrices must be single-rank (replicated) handles"
            );
        }
        let plan = partition(
            &jobs.iter().map(estimate_job_cost).collect::<Vec<_>>(),
            world_size,
            &self.budget,
        );
        let engine = &self.engine;
        let (jobs_ref, plan_ref) = (&jobs, &plan);
        let (mut per_rank, world_stats) = run_ranks(world_size, |comm| {
            run_rank(engine, jobs_ref, plan_ref, comm)
        });
        let results = per_rank[0]
            .take()
            .expect("world rank 0 gathers every job result");
        SchedulerOutcome {
            results,
            plan,
            world_stats,
        }
    }
}

/// Parent-level tag of one result stream (`part` 0 = block meta, 1 = block
/// data, 2 = telemetry) of job `job`, in a namespace well clear of the
/// small constants the wire module uses elsewhere.
fn result_tag(job: usize, part: u64) -> u64 {
    wire::user_tag((1 << 40) | ((job as u64) * 4 + part))
}

/// One world rank's share of a scheduled batch: split off the group
/// subcommunicator, run the group's jobs, and (on world rank 0) gather
/// every job's result.
fn run_rank(
    engine: &SubmatrixEngine,
    jobs: &[MatrixJob],
    plan: &SchedulePlan,
    comm: &ThreadComm,
) -> Option<Vec<JobResult>> {
    let group = plan.group_of_rank(comm.rank());
    let color = group.map_or(IDLE_COLOR, |g| g as u64);
    // Collective over the whole world — idle ranks participate too.
    let sub = comm.split(color, comm.rank() as u64);

    if let Some(g) = group {
        for &j in &plan.groups[g].jobs {
            let job = &jobs[j];
            let bytes0 = sub.stats().total_bytes();
            let msgs0 = sub.stats().total_msgs();
            let t = Instant::now();

            // Scatter the replicated input: each rank keeps the blocks it
            // owns under the group-sized process grid (a local selection —
            // the single-rank handle is replicated shared memory, the
            // simulator's stand-in for an MPI_COMM_SELF matrix every rank
            // holds).
            let mut local = DbcsrMatrix::new(job.matrix.dims().clone(), sub.rank(), sub.size());
            for (&(br, bc), blk) in job.matrix.store().iter() {
                if local.is_mine(br, bc) {
                    local.insert_block(br, bc, blk.clone());
                }
            }

            // Plan (through the shared, contended cache) + execute,
            // collectively on the subgroup.
            let (eplan, built_now) = engine.plan_for_matrix_traced(&local, &sub);
            let (mut result, mut report) =
                engine.execute(&eplan, &local, job.mu0, &job.numeric, &sub);
            job.output.finalize(&mut result, job.numeric.precision);
            report.record_planning(built_now, &eplan);

            // Gather result blocks to the group root: plain point-to-point
            // sends (an alltoallv here would move O(group²) empty
            // payloads and pollute the per-job traffic telemetry). The
            // value encoding follows the job's precision: plain-Fp32
            // results are f32-representable, so the f32 wire is lossless
            // and halves the result-gather bytes too.
            let result_format = if job.numeric.precision.scatter_is_f32() {
                ValueFormat::F32
            } else {
                ValueFormat::F64
            };
            let mut gathered: Vec<((usize, usize), sm_linalg::Matrix)> = result.store_mut().drain();
            if sub.rank() != 0 {
                let (meta, data) =
                    wire::pack_blocks_prec(gathered.iter().map(|(c, b)| (c, b)), result_format);
                sub.send(0, GATHER_META_TAG, Payload::U64(meta));
                sub.send(0, GATHER_DATA_TAG, data);
                gathered.clear();
            } else {
                for src in 1..sub.size() {
                    let meta = sub.recv(src, GATHER_META_TAG).into_u64();
                    let data = sub.recv(src, GATHER_DATA_TAG);
                    gathered.extend(wire::unpack_blocks_prec(job.matrix.dims(), &meta, data));
                }
            }
            let seconds = t.elapsed().as_secs_f64();

            // Group-wide telemetry: total subgroup traffic this job moved
            // (Sum), the critical-path phase timings, and the symbolic
            // work — any rank may have rebuilt an evicted plan while the
            // root hit, so plan_cached/symbolic_seconds must be reduced
            // too, not taken from the root alone (Max doubles as OR for
            // the 0/1 built flag). The plan's TransferStats are per-rank
            // shares and are Sum-reduced to whole-run numbers, matching
            // what the serial queue reports for the same job.
            let mut traffic = [
                (sub.stats().total_bytes() - bytes0) as f64,
                (sub.stats().total_msgs() - msgs0) as f64,
                report.transfers.unique_bytes as f64,
                report.transfers.naive_bytes as f64,
                report.transfers.unique_blocks as f64,
                report.transfers.total_references as f64,
                report.gather_value_bytes as f64,
                report.scatter_value_bytes as f64,
            ];
            sub.allreduce_f64(ReduceOp::Sum, &mut traffic);
            report.transfers = TransferStats {
                unique_bytes: traffic[2] as u64,
                naive_bytes: traffic[3] as u64,
                unique_blocks: traffic[4] as u64,
                total_references: traffic[5] as u64,
            };
            report.gather_value_bytes = traffic[6] as u64;
            report.scatter_value_bytes = traffic[7] as u64;
            let mut phases = [
                report.gather_seconds,
                report.solve_seconds,
                report.scatter_seconds,
                seconds,
                report.symbolic_seconds,
                if built_now { 1.0 } else { 0.0 },
            ];
            sub.allreduce_f64(ReduceOp::Max, &mut phases);
            report.gather_seconds = phases[0];
            report.solve_seconds = phases[1];
            report.scatter_seconds = phases[2];
            report.symbolic_seconds = phases[4];
            report.plan_cached = phases[5] == 0.0;

            // Group root ships the finished job to world rank 0 — in the
            // job's result format too: the largest per-job message also
            // halves for plain-Fp32 jobs, still losslessly.
            if sub.rank() == 0 {
                let mut root_mat = DbcsrMatrix::new(job.matrix.dims().clone(), 0, 1);
                for ((br, bc), blk) in gathered {
                    root_mat.insert_block(br, bc, blk);
                }
                let (meta, data) = wire::pack_blocks_prec(root_mat.store().iter(), result_format);
                comm.send(0, result_tag(j, 0), Payload::U64(meta));
                comm.send(0, result_tag(j, 1), data);
                let telemetry = encode_telemetry(
                    &report,
                    phases[3],
                    sub.size(),
                    traffic[0] as u64,
                    traffic[1] as u64,
                );
                comm.send(0, result_tag(j, 2), Payload::F64(telemetry));
            }
        }
    }

    if comm.rank() != 0 {
        return None;
    }
    // World rank 0: collect every job from its group root (its own sends
    // arrive through the local mailbox).
    let results = (0..jobs.len())
        .map(|j| {
            let root = plan.root_of_job(j);
            let meta = comm.recv(root, result_tag(j, 0)).into_u64();
            let data = comm.recv(root, result_tag(j, 1));
            let telemetry = comm.recv(root, result_tag(j, 2)).into_f64();
            let mut result = DbcsrMatrix::new(jobs[j].matrix.dims().clone(), 0, 1);
            // The meta header self-describes the value format (f32 for
            // plain-Fp32 jobs), so the unpack needs no job context.
            for ((br, bc), blk) in wire::unpack_blocks_prec(jobs[j].matrix.dims(), &meta, data) {
                result.insert_block(br, bc, blk);
            }
            let (report, seconds, group_size, comm_bytes, comm_msgs) = decode_telemetry(&telemetry);
            JobResult {
                name: jobs[j].name.clone(),
                result,
                report,
                seconds,
                group_size,
                comm_bytes,
                comm_msgs,
            }
        })
        .collect();
    Some(results)
}

/// Stable wire code of a [`Precision`] inside the telemetry record.
fn precision_code(p: Precision) -> f64 {
    match p {
        Precision::Fp64 => 0.0,
        Precision::Fp32 => 1.0,
        Precision::Fp32Refined => 2.0,
    }
}

/// Inverse of [`precision_code`].
fn precision_from_code(x: f64) -> Precision {
    match x as u64 {
        0 => Precision::Fp64,
        1 => Precision::Fp32,
        2 => Precision::Fp32Refined,
        other => panic!("unknown precision code {other}"),
    }
}

/// Flatten a job's telemetry — the group root's [`EngineReport`] plus
/// wall-time, group size and subgroup traffic — into one `f64` record for
/// the root gather. Counters ride as `f64` (exact up to 2⁵³, far beyond
/// any simulated run).
fn encode_telemetry(
    report: &EngineReport,
    seconds: f64,
    group_size: usize,
    comm_bytes: u64,
    comm_msgs: u64,
) -> Vec<f64> {
    vec![
        report.n_submatrices as f64,
        report.max_dim as f64,
        report.avg_dim,
        report.total_cost,
        report.transfers.unique_bytes as f64,
        report.transfers.naive_bytes as f64,
        report.transfers.unique_blocks as f64,
        report.transfers.total_references as f64,
        report.mu,
        report.bisect_iterations as f64,
        report.plan_cached as u64 as f64,
        report.symbolic_seconds,
        report.gather_seconds,
        report.solve_seconds,
        report.scatter_seconds,
        seconds,
        group_size as f64,
        comm_bytes as f64,
        comm_msgs as f64,
        precision_code(report.precision),
        report.gather_value_bytes as f64,
        report.scatter_value_bytes as f64,
    ]
}

/// Inverse of [`encode_telemetry`].
fn decode_telemetry(x: &[f64]) -> (EngineReport, f64, usize, u64, u64) {
    assert_eq!(x.len(), 22, "telemetry record has 22 fields");
    (
        EngineReport {
            n_submatrices: x[0] as usize,
            max_dim: x[1] as usize,
            avg_dim: x[2],
            total_cost: x[3],
            transfers: TransferStats {
                unique_bytes: x[4] as u64,
                naive_bytes: x[5] as u64,
                unique_blocks: x[6] as u64,
                total_references: x[7] as u64,
            },
            precision: precision_from_code(x[19]),
            gather_value_bytes: x[20] as u64,
            scatter_value_bytes: x[21] as u64,
            mu: x[8],
            bisect_iterations: x[9] as usize,
            plan_cached: x[10] != 0.0,
            symbolic_seconds: x[11],
            gather_seconds: x[12],
            solve_seconds: x[13],
            scatter_seconds: x[14],
        },
        x[15],
        x[16] as usize,
        x[17] as u64,
        x[18] as u64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_empty_and_single() {
        let p = partition(&[], 4, &RankBudget::default());
        assert!(p.groups.is_empty());
        let p = partition(&[5.0], 4, &RankBudget::default());
        assert_eq!(p.groups.len(), 1);
        assert_eq!(p.groups[0].ranks, 0..4);
        assert_eq!(p.groups[0].jobs, vec![0]);
    }

    #[test]
    fn partition_allocates_ranks_proportionally() {
        // Job 0 is 3x the work of each of jobs 1..3; world of 6 ranks,
        // 4 jobs -> 4 groups, the heavy job's group gets the spare ranks.
        let p = partition(&[9.0, 3.0, 3.0, 3.0], 6, &RankBudget::default());
        assert_eq!(p.groups.len(), 4);
        let g0 = p.group_of_job(0);
        assert_eq!(p.groups[g0].ranks.len(), 3);
        let total: usize = p.groups.iter().map(|g| g.ranks.len()).sum();
        assert_eq!(total, 6);
        // Ranges are contiguous and disjoint.
        let mut next = 0;
        for g in &p.groups {
            assert_eq!(g.ranks.start, next);
            next = g.ranks.end;
        }
    }

    #[test]
    fn partition_respects_caps() {
        let budget = RankBudget {
            max_group_size: Some(2),
            max_groups: Some(2),
        };
        let p = partition(&[1.0, 1.0, 1.0, 1.0], 8, &budget);
        assert_eq!(p.groups.len(), 2);
        for g in &p.groups {
            assert_eq!(g.ranks.len(), 2);
            assert_eq!(g.jobs.len(), 2);
        }
        // Ranks 4..8 are idle.
        assert_eq!(p.group_of_rank(3), Some(1));
        assert_eq!(p.group_of_rank(4), None);
    }

    #[test]
    fn partition_is_longest_job_first() {
        let p = partition(&[1.0, 8.0, 2.0], 2, &RankBudget::default());
        // Heaviest job (1) alone on one group; 2 and 0 share the other,
        // heavier first.
        let g1 = p.group_of_job(1);
        assert_eq!(p.groups[g1].jobs, vec![1]);
        let other = 1 - g1;
        assert_eq!(p.groups[other].jobs, vec![2, 0]);
    }

    #[test]
    fn telemetry_roundtrip() {
        let report = EngineReport {
            n_submatrices: 7,
            max_dim: 12,
            avg_dim: 9.5,
            total_cost: 1234.0,
            transfers: TransferStats {
                unique_bytes: 100,
                naive_bytes: 300,
                unique_blocks: 10,
                total_references: 30,
            },
            precision: Precision::Fp32Refined,
            gather_value_bytes: 2048,
            scatter_value_bytes: 512,
            mu: -0.25,
            bisect_iterations: 3,
            plan_cached: true,
            symbolic_seconds: 0.5,
            gather_seconds: 0.1,
            solve_seconds: 0.2,
            scatter_seconds: 0.3,
        };
        let enc = encode_telemetry(&report, 1.5, 4, 4096, 17);
        let (dec, seconds, group, bytes, msgs) = decode_telemetry(&enc);
        assert_eq!(dec.n_submatrices, 7);
        assert_eq!(dec.transfers, report.transfers);
        assert_eq!(dec.mu, report.mu);
        assert!(dec.plan_cached);
        assert_eq!(dec.precision, Precision::Fp32Refined);
        assert_eq!(dec.gather_value_bytes, 2048);
        assert_eq!(dec.scatter_value_bytes, 512);
        assert_eq!((seconds, group, bytes, msgs), (1.5, 4, 4096, 17));
    }

    #[test]
    fn precision_codes_roundtrip() {
        for p in Precision::all() {
            assert_eq!(precision_from_code(precision_code(p)), p);
        }
    }
}
