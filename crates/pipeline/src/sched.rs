//! Distributed job scheduler: per-job subcommunicators with epoch-based
//! work stealing between groups.
//!
//! [`JobQueue`](crate::jobs::JobQueue) runs every job of a batch on a
//! single process; the world's other ranks idle. [`Scheduler`] instead
//! carves a world of `N` ranks into per-job **groups** — subcommunicators
//! obtained from [`Comm::split`] — and runs each job's plan/execute
//! collectively on its group, so independent matrix evaluations proceed
//! concurrently *and* each one can itself be rank-parallel:
//!
//! 1. **Estimate**: every job's submatrix work is estimated from its
//!    sparsity pattern, weighted by `sm_accel::perfmodel`'s utilization
//!    curve (small solves run further from peak, so their FLOPs count for
//!    more wall time).
//! 2. **Partition** ([`partition`]): jobs are packed longest-first onto
//!    `G = min(world, jobs)` groups (classic LPT), then the world's ranks
//!    are dealt to groups proportionally to estimated load (every group
//!    gets at least one rank; [`RankBudget`] can cap group size or count —
//!    leftover ranks that no cap-respecting group may take are folded into
//!    the largest group rather than idling).
//! 3. **Epoch plan** ([`plan_epochs`]): the batch is cut into **epochs** —
//!    waves of jobs. Within an epoch every group commits a greedy fill of
//!    its LPT queue up to the *steal horizon* (the longest single-job
//!    commitment any group must make, by the same perfmodel estimates);
//!    jobs beyond the horizon are deferred. Between epochs the current
//!    subcommunicators are torn down and the **world** comm is re-split
//!    over the deferred jobs — a fresh one-level split, never a nested one,
//!    preserving the tag-namespace invariant — so ranks whose group's
//!    queue has drained are re-dealt onto the straggler groups' remaining
//!    jobs. A job that thereby runs on ranks outside its original (static)
//!    group counts as **stolen**; [`StealStats`] reports epochs, steals,
//!    and the idle-rank time the re-deal recovers. A batch the static
//!    partition already balances collapses to a single epoch identical to
//!    the static schedule ([`StealPolicy::Disabled`] forces that shape).
//! 4. **Execute**: each epoch, each group's ranks split off a
//!    subcommunicator (fresh per-group [`CommStats`], so traffic is
//!    attributed per epoch), scatter the replicated input across the
//!    group, run the shared [`SubmatrixEngine`]'s plan + execute on it,
//!    and gather the result to the group root.
//! 5. **Gather**: group roots ship each finished job — result blocks in
//!    the `sm_dbcsr::wire` format plus an encoded telemetry record — to
//!    world rank 0, which returns the batch in submission order.
//!
//! The engine is shared across groups, so its plan cache is the contended
//! resource: recurring patterns hit plans built by *other* groups (same
//! `(fingerprint, rank, size)` key), and a bounded cache
//! (`EngineOptions::plan_cache_capacity`) evicts cold plans under
//! multi-tenant traffic. The cache's collective hit/miss **consensus** is
//! per-group **per-epoch**: it is decided by an allreduce on the group's
//! current subcommunicator at every planning call, so regrouping between
//! epochs (which changes every `(rank, size)` key) can never leave two
//! ranks of one group disagreeing about entering the collective pattern
//! gather.
//!
//! ## Determinism
//!
//! Everything pattern- and schedule-shaping is deterministic — the epoch
//! plan is a pure function of the estimated costs, the world size and the
//! budget, never of measured wall time — and the numeric path performs the
//! same per-submatrix solves with the same inputs regardless of the group
//! size, so grand-canonical jobs produce **bitwise-identical** results to
//! the serial [`JobQueue`](crate::jobs::JobQueue) for any world size *and any steal schedule*
//! (pinned by the `scheduler_equivalence` and `stealing_equivalence`
//! suites). Canonical-ensemble jobs bisect µ through a cross-rank
//! reduction whose summation order depends on the group size, so they
//! match to floating-point reduction accuracy instead.
//!
//! ## Tags
//!
//! Subgroup traffic rides the parent tag namespace reserved by
//! `sm_comsim::SUBGROUP_BIT`; each epoch's groups split with a color that
//! mixes the epoch index, so successive epochs salt their tag namespaces
//! differently. The only parent-level user traffic is the root gather, on
//! tags derived from the job index (see the private `result_tag`), plus —
//! under a fault plan — the recovery protocol's control tags in the
//! `1 << 41` (consensus) and `1 << 42` (idle report) namespaces. The
//! `sm_dbcsr::wire::user_tag` guard applies unchanged inside subgroups.
//!
//! ## Faults and recovery
//!
//! Installing a deterministic [`sm_comsim::FaultPlan`]
//! ([`Scheduler::with_fault_plan`]) switches the batch onto the
//! **epoch-level recovery** path:
//!
//! * [`plan_recovery`] precomputes the entire recovery schedule as a
//!   **pure function** of the admitted job set, the perfmodel estimates
//!   and the plan's committed fault view — per epoch it commits the
//!   newly failed ranks, re-partitions the still-pending jobs over the
//!   **survivors only**, commits a steal-horizon wave, and resolves
//!   every attempt (success, deterministic backoff retry, or quarantine
//!   once the [`Scheduler::with_retry_budget`] budget is exhausted).
//! * At runtime every epoch opens with a **fault consensus**: survivors
//!   heartbeat world rank 0 (which never fails), rank 0 commits the
//!   failed set from deadline receives — a dead peer surfaces as a typed
//!   [`sm_comsim::CommError`], never a hang — and broadcasts the
//!   committed view, which every survivor checks against the
//!   precomputed schedule (the same collective-agreement trick as the
//!   plan cache's hit/miss consensus).
//! * Groups re-form with [`sm_comsim::split_known`] from the agreed
//!   member lists — no world-level collective, so dead ranks are never
//!   waited on. Poisoned attempts are skipped by the whole group from
//!   the pure plan alone; successful attempts execute bit-for-bit the
//!   fault-free job body, so every non-quarantined job stays
//!   **bitwise-identical** to the serial queue (the `fault_equivalence`
//!   suite pins this).

use std::collections::BTreeSet;
use std::ops::Range;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sm_accel::perfmodel;
use sm_chem::ScfDriver;
use sm_comsim::{
    run_ranks, run_ranks_with_faults, split_known, Comm, CommError, CommStats, FaultPlan, Payload,
    ReduceOp, SerialComm, SubComm, ThreadComm,
};
use sm_core::engine::{EngineOptions, EngineReport, NumericOptions, SubmatrixEngine};
use sm_core::solver::{SignMethod, SolveBackend};
use sm_core::transfers::TransferStats;
use sm_dbcsr::wire::{tele, TelemetryRecord, ValueFormat};
use sm_dbcsr::{wire, DbcsrMatrix};
use sm_linalg::Precision;
use sm_trace::SpanKind;

use crate::jobs::{BatchJob, JobResult, MatrixJob, ScfTelemetry};

/// Color given to ranks left without a group (only possible for an empty
/// batch; the partition itself never leaves a rank groupless).
const IDLE_COLOR: u64 = u64::MAX;

/// Subgroup user tags of the per-job result gather to the group root.
/// Safe to reuse across a group's sequential jobs: every send is matched
/// by a blocking recv before the next job starts, and `(src, tag)` order
/// is preserved.
const GATHER_META_TAG: u64 = 11;
const GATHER_DATA_TAG: u64 = 12;

/// Parent-level tag namespace of the recovery protocol's per-epoch fault
/// consensus (heartbeats to rank 0 and the committed-view fan-out), well
/// clear of the result gather's `1 << 40` namespace.
const CONSENSUS_NS: u64 = 1 << 41;
/// Distinguishes the committed-view fan-out from the heartbeats within
/// [`CONSENSUS_NS`] (epoch indices stay far below this bit).
const CONSENSUS_VIEW_BIT: u64 = 1 << 20;
/// Parent-level tag namespace of the end-of-batch survivor idle reports.
const IDLE_NS: u64 = 1 << 42;
/// Deadline for the recovery protocol's control receives. Failure
/// detection does not rely on it — a dying rank poisons its channels, so
/// the matching receive fails in milliseconds — it is only the backstop
/// that bounds how long a pathological straggler can stall consensus.
const CONTROL_TIMEOUT: Duration = Duration::from_secs(30);

/// Default per-job attempt budget under fault injection (first attempt +
/// two retries), overridable via [`Scheduler::with_retry_budget`].
pub const DEFAULT_RETRY_BUDGET: usize = 3;

/// Rank-budget policy: how many groups to form and how large each may
/// grow. The default is uncapped — `min(world, jobs)` groups, ranks dealt
/// proportionally to estimated load.
#[derive(Debug, Clone, Copy, Default)]
pub struct RankBudget {
    /// Upper bound on ranks per group (`None` = no cap). With
    /// `world = jobs × k` and a cap of `k`, every group gets exactly `k`
    /// ranks — the knob the equivalence suite uses to pin group sizes.
    /// The cap is *soft* in one case: when every group is capped and
    /// spare ranks remain, the leftovers fold into the largest group
    /// instead of idling for the whole batch.
    pub max_group_size: Option<usize>,
    /// Upper bound on the number of concurrent groups (`None` = no cap).
    pub max_groups: Option<usize>,
}

/// Whether the scheduler may rebalance between epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StealPolicy {
    /// Epoch-based work stealing (the default): between epochs the world
    /// is re-split over the deferred jobs, so drained ranks are re-dealt
    /// onto straggler groups' queues.
    #[default]
    EpochRebalance,
    /// One epoch, static groups for the whole batch — the pre-stealing
    /// behavior, kept as the ablation baseline.
    Disabled,
}

/// One group of the schedule: which jobs it runs (longest first) on which
/// contiguous world ranks.
#[derive(Debug, Clone)]
pub struct GroupPlan {
    /// Job indices in execution order (descending estimated cost,
    /// submission order breaking ties).
    pub jobs: Vec<usize>,
    /// World ranks forming this group's subcommunicator; `ranks.start` is
    /// the group root.
    pub ranks: Range<usize>,
    /// Total estimated cost of the group's jobs.
    pub est_cost: f64,
}

/// Deterministic work partition produced by [`partition`].
#[derive(Debug, Clone)]
pub struct SchedulePlan {
    /// World size the plan was built for.
    pub world_size: usize,
    /// The groups, in world-rank order.
    pub groups: Vec<GroupPlan>,
    /// Per-job estimated costs (submission order).
    pub job_costs: Vec<f64>,
}

impl SchedulePlan {
    /// The group index a world rank belongs to (`None` = idle).
    pub fn group_of_rank(&self, rank: usize) -> Option<usize> {
        self.groups.iter().position(|g| g.ranks.contains(&rank))
    }

    /// The group index running a job.
    pub fn group_of_job(&self, job: usize) -> usize {
        self.groups
            .iter()
            .position(|g| g.jobs.contains(&job))
            .expect("every job is scheduled on exactly one group")
    }

    /// The world rank acting as a job's group root.
    pub fn root_of_job(&self, job: usize) -> usize {
        self.groups[self.group_of_job(job)].ranks.start
    }
}

/// Estimate the submatrix work of **one engine evaluation** of a sparsity
/// pattern: for each block column, the induced submatrix dimension `n`
/// costs `2n³` FLOPs (one dense solve), inflated by the perfmodel
/// utilization curve — small matrices run far from peak, so their FLOPs
/// buy more wall time. Pattern-only and cheap; no plan is built.
pub fn estimate_pattern_cost(matrix: &DbcsrMatrix) -> f64 {
    let comm = SerialComm::new();
    let pattern = matrix.global_pattern(&comm);
    let dims = matrix.dims();
    let mut cost = 0.0;
    for bc in 0..dims.nb() {
        let n: usize = pattern.rows_in_col(bc).map(|br| dims.size(br)).sum();
        if n > 0 {
            let flops = 2.0 * (n as f64).powi(3);
            cost += flops / perfmodel::matmul_utilization(1.0, n);
        }
    }
    cost
}

/// Backend-aware variant of [`estimate_pattern_cost`]: when the job's
/// [`BackendPolicy`](sm_core::engine::BackendPolicy) resolves to the
/// sparse-CSR solve for this pattern's element fill (and the configured
/// sign method honors the backend at all), the dense estimate is scaled
/// by [`perfmodel::sparse_solve_cost_factor`].
///
/// The fill is computed from the same replicated pattern walk the
/// engine's symbolic phase performs, and the resolution goes through the
/// same shared [`resolve`](sm_core::engine::BackendPolicy::resolve) rule
/// — scheduler and engine can never disagree about which backend a job
/// runs, so the schedule stays a pure function of the estimates.
pub fn estimate_pattern_cost_for(matrix: &DbcsrMatrix, numeric: &NumericOptions) -> f64 {
    let comm = SerialComm::new();
    let pattern = matrix.global_pattern(&comm);
    let dims = matrix.dims();
    let mut cost = 0.0;
    let mut nnz_elems = 0.0;
    for bc in 0..dims.nb() {
        let n: usize = pattern.rows_in_col(bc).map(|br| dims.size(br)).sum();
        if n > 0 {
            let flops = 2.0 * (n as f64).powi(3);
            cost += flops / perfmodel::matmul_utilization(1.0, n);
        }
        nnz_elems += pattern
            .rows_in_col(bc)
            .map(|br| (dims.size(br) * dims.size(bc)) as f64)
            .sum::<f64>();
    }
    let n_elems = (dims.n() * dims.n()) as f64;
    let fill = if n_elems > 0.0 {
        nnz_elems / n_elems
    } else {
        0.0
    };
    let backend_honored = matches!(
        numeric.solve.method,
        SignMethod::NewtonSchulz | SignMethod::Pade(_)
    );
    if backend_honored && numeric.backend.resolve(fill) == SolveBackend::SparseCsr {
        cost *= perfmodel::sparse_solve_cost_factor(fill);
    }
    cost
}

/// Estimate one matrix job's submatrix work (a single evaluation of its
/// pattern under its numeric options; see [`estimate_pattern_cost_for`]).
pub fn estimate_job_cost(job: &MatrixJob) -> f64 {
    estimate_pattern_cost_for(&job.matrix, &job.numeric)
}

/// Estimate a [`BatchJob`]'s total work: the **per-iteration** pattern
/// cost times the job's iteration budget. A one-shot matrix job is one
/// iteration; an SCF job re-evaluates the same pattern every iteration
/// (on the same cached plan), so its commitment scales linearly with the
/// expected iteration count — this is the cost-model generalization that
/// lets iterative jobs ride the same LPT/steal machinery as one-shot
/// evaluations.
pub fn estimate_batch_job_cost(job: &BatchJob) -> f64 {
    estimate_pattern_cost_for(job.input(), job_numeric(job)) * job.iteration_budget() as f64
}

/// The numeric options a job will execute under (matrix jobs carry them
/// directly; SCF jobs nest them inside their [`ScfOptions`]).
fn job_numeric(job: &BatchJob) -> &NumericOptions {
    match job {
        BatchJob::Matrix(j) => &j.numeric,
        BatchJob::Scf(j) => &j.scf.numeric,
    }
}

/// Admission gate on the perfmodel estimates: every cost must be finite,
/// or the schedule (a pure function of the estimates) is undefined. The
/// first offender is reported as [`SchedError::BadEstimate`].
fn check_estimates(jobs: &[BatchJob], costs: &[f64]) -> Result<(), SchedError> {
    for (job, &cost) in jobs.iter().zip(costs) {
        if !cost.is_finite() {
            return Err(SchedError::BadEstimate {
                name: job.name().to_string(),
                cost,
            });
        }
    }
    Ok(())
}

/// Deterministically partition `costs.len()` jobs over `world_size` ranks:
/// longest-job-first packing onto `min(world, jobs)` groups (respecting
/// `budget.max_groups`), then proportional rank allocation (respecting
/// `budget.max_group_size`; every group gets at least one rank; ranks no
/// group may take under the cap are folded into the largest group so no
/// rank sits idle for the whole batch).
pub fn partition(costs: &[f64], world_size: usize, budget: &RankBudget) -> SchedulePlan {
    assert!(world_size >= 1, "need at least one rank");
    let n = costs.len();
    if n == 0 {
        return SchedulePlan {
            world_size,
            groups: Vec::new(),
            job_costs: Vec::new(),
        };
    }
    let mut n_groups = world_size.min(n);
    if let Some(mg) = budget.max_groups {
        n_groups = n_groups.min(mg.max(1));
    }

    // Longest job first, submission order breaking ties. `total_cmp`
    // keeps the sort total even on non-finite estimates (the scheduler
    // rejects those at admission, but `partition` is a public entry point
    // and a NaN must not panic mid-schedule).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| costs[b].total_cmp(&costs[a]).then(a.cmp(&b)));

    // LPT packing onto the least-loaded group.
    let mut group_jobs: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
    let mut loads = vec![0.0f64; n_groups];
    for &j in &order {
        let g = (0..n_groups)
            .min_by(|&a, &b| loads[a].total_cmp(&loads[b]))
            .expect("n_groups >= 1");
        group_jobs[g].push(j);
        loads[g] += costs[j];
    }

    // Proportional rank allocation: start at one rank each, then hand the
    // remaining ranks one at a time to the group with the highest load per
    // rank (lowest index breaking ties), respecting the size cap.
    let cap = budget.max_group_size.unwrap_or(usize::MAX).max(1);
    let mut sizes = vec![1usize; n_groups];
    let mut spare = world_size.saturating_sub(n_groups);
    while spare > 0 {
        let candidate = (0..n_groups).filter(|&g| sizes[g] < cap).max_by(|&a, &b| {
            (loads[a] / sizes[a] as f64)
                .total_cmp(&(loads[b] / sizes[b] as f64))
                .then(b.cmp(&a)) // prefer the lower group index
        });
        match candidate {
            Some(g) => {
                sizes[g] += 1;
                spare -= 1;
            }
            None => {
                // Every group is capped. Fold the leftovers into the
                // largest group (lowest index breaking ties) instead of
                // leaving them idle for the whole batch.
                let g = (0..n_groups)
                    .max_by(|&a, &b| sizes[a].cmp(&sizes[b]).then(b.cmp(&a)))
                    .expect("n_groups >= 1");
                sizes[g] += spare;
                spare = 0;
            }
        }
    }

    let mut groups = Vec::with_capacity(n_groups);
    let mut start = 0usize;
    for g in 0..n_groups {
        groups.push(GroupPlan {
            jobs: std::mem::take(&mut group_jobs[g]),
            ranks: start..start + sizes[g],
            est_cost: loads[g],
        });
        start += sizes[g];
    }
    SchedulePlan {
        world_size,
        groups,
        job_costs: costs.to_vec(),
    }
}

/// The **steal horizon** of one epoch's partition: the longest single-job
/// wall-clock commitment any group's *leading* job imposes, in estimated
/// cost units —
///
/// ```text
/// horizon = max over non-empty groups g of  cost(g.jobs[0]) / |g.ranks|
/// ```
///
/// A job cannot be split across epochs, so no re-deal can finish the
/// epoch faster than the largest leading job runs on its own group; any
/// queue a group holds *beyond* that horizon is pure straggler tail that
/// later epochs can re-deal over drained ranks. Groups that LPT left
/// empty (possible when zero-cost jobs all pile onto the first zero-load
/// group) impose no commitment and are skipped. The
/// `steal_horizon_is_max_leading_cost_per_ranks` regression test pins
/// this formula directly against [`plan_epochs`]'s commit/defer behavior.
pub fn steal_horizon(plan: &SchedulePlan) -> f64 {
    plan.groups
        .iter()
        .filter(|g| !g.jobs.is_empty())
        .map(|g| plan.job_costs[g.jobs[0]] / g.ranks.len() as f64)
        .fold(0.0f64, f64::max)
}

/// Work-stealing telemetry of one scheduled batch: how many epochs the
/// planner cut, how much rank capacity moved between groups, and how much
/// idle-rank time the re-deal recovers. The `est_*` figures are in the
/// perfmodel's deterministic cost units (a pure function of the batch, so
/// tests can assert them exactly); the `measured_*` figures are wall-clock
/// seconds observed on this run (reported, never asserted — thread ranks
/// share cores).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StealStats {
    /// Number of epochs (1 = the static schedule; no re-split happened).
    pub epochs: usize,
    /// Jobs that executed on at least one rank outside their static
    /// (epoch-0) group.
    pub stolen_jobs: usize,
    /// Total foreign ranks across all stolen jobs.
    pub stolen_ranks: usize,
    /// Σ over ranks of estimated idle time under the static schedule.
    pub est_idle_cost_static: f64,
    /// Σ over ranks of estimated idle time under the epoch schedule.
    pub est_idle_cost_epochs: f64,
    /// Estimated idle time of the *most idle* rank, static schedule.
    pub est_max_rank_idle_static: f64,
    /// Estimated idle time of the *most idle* rank, epoch schedule.
    pub est_max_rank_idle_epochs: f64,
    /// Measured Σ over ranks of (batch wall − rank busy) seconds.
    pub measured_idle_seconds: f64,
    /// Measured idle seconds of the most idle rank.
    pub measured_max_rank_idle_seconds: f64,
}

impl StealStats {
    /// Estimated idle-rank time the epoch re-deal recovers over the static
    /// schedule (cost units; ≥ 0 exactly when the re-deal shortens the
    /// estimated makespan).
    pub fn est_idle_cost_recovered(&self) -> f64 {
        self.est_idle_cost_static - self.est_idle_cost_epochs
    }
}

/// One epoch of the schedule: a fresh one-level split of the world into
/// groups, each committing a wave of jobs.
#[derive(Debug, Clone)]
pub struct Epoch {
    /// The epoch's groups, in world-rank order (ranks cover the world).
    pub groups: Vec<GroupPlan>,
}

impl Epoch {
    /// The group index a world rank belongs to in this epoch.
    pub fn group_of_rank(&self, rank: usize) -> Option<usize> {
        self.groups.iter().position(|g| g.ranks.contains(&rank))
    }

    /// The group index running a job in this epoch (`None` if the job
    /// belongs to another epoch).
    pub fn group_of_job(&self, job: usize) -> Option<usize> {
        self.groups.iter().position(|g| g.jobs.contains(&job))
    }
}

/// Deterministic epoch/steal plan produced by [`plan_epochs`]: the static
/// partition plus the epoch waves actually executed, with per-job steal
/// attribution and the planned [`StealStats`].
#[derive(Debug, Clone)]
pub struct EpochSchedule {
    /// World size the schedule was built for.
    pub world_size: usize,
    /// The static (single-epoch) partition — the baseline the steal
    /// telemetry is measured against, and epoch 0's grouping.
    pub static_plan: SchedulePlan,
    /// The epochs, in execution order.
    pub epochs: Vec<Epoch>,
    /// Each job's static group index (its "home" group).
    pub home_group: Vec<usize>,
    /// The epoch each job executes in.
    pub job_epoch: Vec<usize>,
    /// Per job: ranks of its executing group that are outside its home
    /// group's static allocation (0 = no stealing).
    pub job_stolen_ranks: Vec<usize>,
    /// Planned steal telemetry (`measured_*` fields are zero until the
    /// scheduler fills them from an actual run).
    pub planned: StealStats,
}

impl EpochSchedule {
    /// The world rank acting as a job's group root (in its epoch).
    pub fn root_of_job(&self, job: usize) -> usize {
        let e = self.job_epoch[job];
        let g = self.epochs[e]
            .group_of_job(job)
            .expect("job_epoch indexes the epoch that runs the job");
        self.epochs[e].groups[g].ranks.start
    }

    /// The ranks executing a job (in its epoch).
    pub fn ranks_of_job(&self, job: usize) -> Range<usize> {
        let e = self.job_epoch[job];
        let g = self.epochs[e]
            .group_of_job(job)
            .expect("job_epoch indexes the epoch that runs the job");
        self.epochs[e].groups[g].ranks.clone()
    }
}

/// Cut a batch into epochs (see the module docs, phase 3). Pure and
/// deterministic: a function of the estimated costs, the world size, the
/// budget and the policy only — never of measured time — so the steal
/// schedule is reproducible and the equivalence suites can assert on it.
///
/// Every epoch re-partitions the *remaining* jobs over the whole world
/// with [`partition`] (LPT within the epoch), then each group commits a
/// greedy fill of its queue up to the epoch's **steal horizon** — the
/// largest single-job wall estimate `cost / ranks` any group's leading job
/// imposes (that job cannot be split, so no re-deal can beat its
/// commitment). Deferred jobs form the next epoch's input. Each epoch
/// commits at least one job per group, so the planner terminates in at
/// most `jobs` epochs.
pub fn plan_epochs(
    costs: &[f64],
    world_size: usize,
    budget: &RankBudget,
    policy: StealPolicy,
) -> EpochSchedule {
    let static_plan = partition(costs, world_size, budget);
    let n = costs.len();
    let mut home_group = vec![0usize; n];
    for (g, grp) in static_plan.groups.iter().enumerate() {
        for &j in &grp.jobs {
            home_group[j] = g;
        }
    }

    let mut epochs: Vec<Epoch> = Vec::new();
    let mut job_epoch = vec![0usize; n];
    let mut job_stolen_ranks = vec![0usize; n];

    if n > 0 && policy == StealPolicy::Disabled {
        epochs.push(Epoch {
            groups: static_plan.groups.clone(),
        });
    } else if n > 0 {
        let mut remaining: Vec<usize> = (0..n).collect(); // ascending original indices
        while !remaining.is_empty() {
            let e = epochs.len();
            assert!(e < n, "epoch planner failed to converge");
            let rcosts: Vec<f64> = remaining.iter().map(|&j| costs[j]).collect();
            let p = partition(&rcosts, world_size, budget);

            // Steal horizon of this epoch's partition: `max cost/ranks`
            // over leading jobs (see [`steal_horizon`] for the formula and
            // why empty groups are skipped). `p.job_costs` is exactly
            // `rcosts`, so the indices in `p.groups` line up. A horizon
            // that is zero (all-zero-cost batch) or non-finite carries no
            // ordering information — treat it as unbounded so the epoch
            // commits everything instead of deferring pathologically.
            let horizon = steal_horizon(&p);
            let unbounded = !(horizon.is_finite() && horizon > 0.0);

            let mut groups = Vec::with_capacity(p.groups.len());
            let mut deferred: Vec<usize> = Vec::new();
            for grp in &p.groups {
                let ranks_f = grp.ranks.len() as f64;
                let mut committed = Vec::with_capacity(grp.jobs.len());
                let mut cum = 0.0f64;
                for (pos, &k) in grp.jobs.iter().enumerate() {
                    // Greedy fill to the horizon (LPT order, so later jobs
                    // are smaller and may still fit); the leading job is
                    // always committed.
                    if pos == 0
                        || unbounded
                        || (cum + rcosts[k]) / ranks_f <= horizon * (1.0 + 1e-9)
                    {
                        committed.push(remaining[k]);
                        cum += rcosts[k];
                    } else {
                        deferred.push(remaining[k]);
                    }
                }
                for &j in &committed {
                    job_epoch[j] = e;
                    let home = &static_plan.groups[home_group[j]].ranks;
                    job_stolen_ranks[j] = grp.ranks.clone().filter(|r| !home.contains(r)).count();
                }
                groups.push(GroupPlan {
                    jobs: committed,
                    ranks: grp.ranks.clone(),
                    est_cost: cum,
                });
            }
            epochs.push(Epoch { groups });
            deferred.sort_unstable();
            remaining = deferred;
        }
    }

    let planned = steal_stats_for(&static_plan, &epochs, &job_stolen_ranks, world_size);
    EpochSchedule {
        world_size,
        static_plan,
        epochs,
        home_group,
        job_epoch,
        job_stolen_ranks,
        planned,
    }
}

/// Planned steal telemetry: per-rank estimated idle under the static plan
/// (every rank waits for the slowest group) versus under the epoch plan
/// (per epoch, every rank waits for the slowest committed group).
fn steal_stats_for(
    static_plan: &SchedulePlan,
    epochs: &[Epoch],
    job_stolen_ranks: &[usize],
    world_size: usize,
) -> StealStats {
    let rank_idle = |groups: &[GroupPlan]| -> Vec<f64> {
        let wall = |g: &GroupPlan| g.est_cost / g.ranks.len() as f64;
        let makespan = groups.iter().map(wall).fold(0.0f64, f64::max);
        let mut idle = vec![makespan; world_size];
        for g in groups {
            for r in g.ranks.clone() {
                idle[r] = makespan - wall(g);
            }
        }
        idle
    };
    let static_idle = rank_idle(&static_plan.groups);
    let mut epoch_idle = vec![0.0f64; world_size];
    for e in epochs {
        for (r, idle) in rank_idle(&e.groups).into_iter().enumerate() {
            epoch_idle[r] += idle;
        }
    }
    let stolen_jobs = job_stolen_ranks.iter().filter(|&&s| s > 0).count();
    StealStats {
        epochs: epochs.len(),
        stolen_jobs,
        stolen_ranks: job_stolen_ranks.iter().sum(),
        est_idle_cost_static: static_idle.iter().sum(),
        est_idle_cost_epochs: epoch_idle.iter().sum(),
        est_max_rank_idle_static: static_idle.iter().fold(0.0f64, |a, &b| a.max(b)),
        est_max_rank_idle_epochs: epoch_idle.iter().fold(0.0f64, |a, &b| a.max(b)),
        measured_idle_seconds: 0.0,
        measured_max_rank_idle_seconds: 0.0,
    }
}

/// Typed scheduler failure, returned by [`Scheduler::try_run_batch`]
/// instead of a panic. Programmer errors (protocol violations, consensus
/// divergence under a deterministic plan) still panic; `SchedError` is
/// reserved for conditions a robust caller is expected to handle.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// A submitted job failed admission validation.
    InvalidJob {
        /// The job's identifier.
        name: String,
        /// What was wrong with it.
        reason: String,
    },
    /// A job's perfmodel estimate is NaN or infinite (e.g. a degenerate
    /// zero-dim pattern). Schedules are pure functions of the estimates
    /// (ARCHITECTURE.md invariant 3), so a non-finite cost cannot be
    /// ordered deterministically — the job is rejected at admission
    /// instead of panicking inside the hot partitioning path.
    BadEstimate {
        /// The job's identifier.
        name: String,
        /// The offending estimate.
        cost: f64,
    },
    /// A communication failure the recovery protocol could not absorb
    /// (e.g. the coordinator timed out collecting a result).
    Comm(CommError),
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::InvalidJob { name, reason } => {
                write!(f, "invalid job '{name}': {reason}")
            }
            SchedError::BadEstimate { name, cost } => write!(
                f,
                "job '{name}' has a non-finite cost estimate ({cost}); \
                 schedules are pure functions of the estimates, so it cannot be admitted"
            ),
            SchedError::Comm(e) => write!(f, "communication failure: {e}"),
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Comm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CommError> for SchedError {
    fn from(e: CommError) -> Self {
        SchedError::Comm(e)
    }
}

/// Fault-handling telemetry of one scheduled batch. All planner-derived
/// fields are **deterministic** — exact functions of (fault plan, job
/// set, world size, budget), reproducible across reruns of the same seed
/// — and the injection counters are deterministic for a fixed protocol.
/// All zeros when no fault plan is installed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Ranks that failed during the batch (committed by consensus).
    pub rank_failures: usize,
    /// Job attempts discarded as poisoned (corrupt-execution model).
    pub poisoned_attempts: usize,
    /// Poisoned attempts that re-entered the deferred queue (each later
    /// re-runs after a deterministic backoff in epochs).
    pub retries: usize,
    /// Jobs quarantined after exhausting their retry budget.
    pub quarantined_jobs: usize,
    /// Epochs the recovery schedule executed.
    pub recovery_epochs: usize,
    /// Surviving ranks after the last epoch.
    pub final_world_size: usize,
    /// Messages lost to the plan's drop rules.
    pub dropped_messages: u64,
    /// Messages stalled by the plan's delay rules.
    pub delayed_messages: u64,
    /// Sends stalled by the plan's slow-rank rules.
    pub slow_stalls: u64,
}

/// One committed execution attempt in a [`RecoveryGroup`]'s queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryAttempt {
    /// Job index (submission order).
    pub job: usize,
    /// 1-based attempt number this commitment represents.
    pub attempt: usize,
    /// True when the plan poisons this attempt: the whole group skips it
    /// (fail-stop detection at the attempt boundary) and the job either
    /// retries after backoff or is quarantined.
    pub poisoned: bool,
}

/// One group of a [`RecoveryEpoch`]: a queue of committed attempts on an
/// explicit (possibly non-contiguous) survivor rank list.
#[derive(Debug, Clone)]
pub struct RecoveryGroup {
    /// Committed attempts in execution order.
    pub jobs: Vec<RecoveryAttempt>,
    /// World ranks forming this group, ascending; `ranks[0]` is the group
    /// root. Unlike the fault-free [`GroupPlan`]'s contiguous range,
    /// survivor sets have holes where ranks died.
    pub ranks: Vec<usize>,
    /// Total estimated cost of the committed attempts.
    pub est_cost: f64,
}

/// One epoch of a [`RecoverySchedule`]: the failures committed at its
/// boundary, the surviving world, and the groups formed over it.
#[derive(Debug, Clone)]
pub struct RecoveryEpoch {
    /// Ranks whose failure this epoch's consensus commits (they died at
    /// the epoch boundary, before taking part in the consensus).
    pub newly_failed: Vec<usize>,
    /// Ranks alive through this epoch, ascending (always contains 0).
    pub survivors: Vec<usize>,
    /// Groups over the survivors (empty during pure backoff-wait epochs).
    pub groups: Vec<RecoveryGroup>,
}

impl RecoveryEpoch {
    /// The group index a world rank belongs to in this epoch.
    pub fn group_of_rank(&self, rank: usize) -> Option<usize> {
        self.groups.iter().position(|g| g.ranks.contains(&rank))
    }
}

/// Deterministic fault-recovery schedule produced by [`plan_recovery`]: a
/// pure function of the admitted job set, the perfmodel estimates and the
/// fault plan's committed failure view — never of measured time — so every
/// survivor derives the identical schedule without coordination beyond the
/// per-epoch failed-set consensus, and reruns of the same seed reproduce
/// the retry/quarantine counters exactly.
#[derive(Debug, Clone)]
pub struct RecoverySchedule {
    /// World size the schedule was built for.
    pub world_size: usize,
    /// Per-job attempt budget the schedule was built under.
    pub retry_budget: usize,
    /// Per-job estimated costs (submission order).
    pub job_costs: Vec<f64>,
    /// The epochs, in execution order.
    pub epochs: Vec<RecoveryEpoch>,
    /// The epoch of each job's final attempt (successful, or the
    /// quarantining one).
    pub job_epoch: Vec<usize>,
    /// Attempts each job consumed.
    pub job_attempts: Vec<usize>,
    /// Whether each job was quarantined.
    pub quarantined: Vec<bool>,
    /// Planner-side fault telemetry (injection counters zero; the
    /// scheduler fills them from the run).
    pub stats: FaultStats,
}

impl RecoverySchedule {
    /// The world rank that rooted a job's successful attempt. Panics for
    /// quarantined jobs (they have none).
    pub fn root_of_job(&self, job: usize) -> usize {
        assert!(
            !self.quarantined[job],
            "job {job} was quarantined and has no successful attempt"
        );
        let ep = &self.epochs[self.job_epoch[job]];
        for g in &ep.groups {
            if g.jobs.iter().any(|a| a.job == job && !a.poisoned) {
                return g.ranks[0];
            }
        }
        panic!("job {job} has no successful attempt in its recorded epoch");
    }
}

/// Precompute the entire epoch-level recovery schedule for a batch under a
/// deterministic [`FaultPlan`] (see the module docs). Pure: a function of
/// the estimated costs, the world size, the rank budget, the plan and the
/// retry budget only.
///
/// Per epoch `e`: commit every rank the plan fails at an epoch `<= e` that
/// is not yet committed; re-[`partition`] the eligible pending jobs
/// (deterministic backoff can push a retry past `e`) over the survivors;
/// commit each group's queue greedily up to the [`steal_horizon`] (exactly
/// the fault-free planner's rule); then resolve each committed attempt
/// against the plan — a poisoned attempt re-enters the pending queue with
/// its next eligible epoch at `e + 2^(attempt-1)` (bounded exponential
/// backoff in epochs), or is quarantined once `retry_budget` attempts are
/// spent. Epochs whose eligible set is empty (all pending jobs backing
/// off) form survivor-idle wait epochs. Terminates because every
/// non-wait epoch resolves at least one attempt and attempts are bounded
/// by `jobs × retry_budget`.
pub fn plan_recovery(
    costs: &[f64],
    world_size: usize,
    budget: &RankBudget,
    plan: &FaultPlan,
    retry_budget: usize,
) -> RecoverySchedule {
    assert!(world_size >= 1, "need at least one rank");
    assert!(retry_budget >= 1, "retry budget must allow one attempt");
    assert!(
        plan.fails_at(0).is_none(),
        "rank 0 is the coordinator and must not fail"
    );
    let n = costs.len();
    let mut failed: BTreeSet<usize> = BTreeSet::new();
    // (job, attempts so far, first epoch the job may run in) — kept in
    // ascending job order so re-partitions see a deterministic input.
    let mut pending: Vec<(usize, usize, usize)> = (0..n).map(|j| (j, 0, 0)).collect();
    let mut epochs: Vec<RecoveryEpoch> = Vec::new();
    let mut job_epoch = vec![0usize; n];
    let mut job_attempts = vec![0usize; n];
    let mut quarantined = vec![false; n];
    let (mut poisoned_attempts, mut retries) = (0usize, 0usize);
    // Generous convergence bound: attempts are capped at n × retry_budget
    // and each backoff gap at 2^(retry_budget-1) wait epochs.
    let bound = 4 + world_size + n * retry_budget * (1 + (1usize << retry_budget.min(20)));
    while !pending.is_empty() {
        let e = epochs.len();
        assert!(e <= bound, "recovery planner failed to converge");
        let newly_failed: Vec<usize> = plan
            .failing_ranks()
            .into_iter()
            .filter(|&r| plan.fails_at(r).expect("listed rank fails") <= e && !failed.contains(&r))
            .collect();
        failed.extend(newly_failed.iter().copied());
        let survivors: Vec<usize> = (0..world_size).filter(|r| !failed.contains(r)).collect();
        assert!(!survivors.is_empty(), "rank 0 never fails");

        let eligible: Vec<(usize, usize)> = pending
            .iter()
            .filter(|&&(_, _, from)| from <= e)
            .map(|&(j, a, _)| (j, a))
            .collect();
        if eligible.is_empty() {
            // Every pending job is backing off: survivors idle one epoch.
            epochs.push(RecoveryEpoch {
                newly_failed,
                survivors,
                groups: Vec::new(),
            });
            continue;
        }

        // Re-partition the eligible jobs over the survivors only — the
        // graceful-degradation step: a failed group's jobs re-enter this
        // deal automatically because their epochs were never recorded.
        let ecosts: Vec<f64> = eligible.iter().map(|&(j, _)| costs[j]).collect();
        let p = partition(&ecosts, survivors.len(), budget);
        let horizon = steal_horizon(&p);
        // Same degenerate-horizon rule as [`plan_epochs`]: a zero or
        // non-finite horizon cannot order the fill, so commit everything.
        let unbounded = !(horizon.is_finite() && horizon > 0.0);
        let mut groups = Vec::with_capacity(p.groups.len());
        let mut resolved: BTreeSet<usize> = BTreeSet::new();
        let mut requeue: Vec<(usize, usize, usize)> = Vec::new();
        for grp in &p.groups {
            let ranks_f = grp.ranks.len() as f64;
            let mut committed = Vec::with_capacity(grp.jobs.len());
            let mut cum = 0.0f64;
            for (pos, &k) in grp.jobs.iter().enumerate() {
                // Same greedy fill as [`plan_epochs`]: the leading job is
                // always committed, later (smaller) jobs only while the
                // queue fits the horizon; the rest defer to next epoch.
                if pos > 0 && !unbounded && (cum + ecosts[k]) / ranks_f > horizon * (1.0 + 1e-9) {
                    continue;
                }
                cum += ecosts[k];
                let (j, prev) = eligible[k];
                let attempt = prev + 1;
                let poisoned = plan.is_poisoned(j, attempt);
                committed.push(RecoveryAttempt {
                    job: j,
                    attempt,
                    poisoned,
                });
                resolved.insert(j);
                job_attempts[j] = attempt;
                job_epoch[j] = e;
                if poisoned {
                    poisoned_attempts += 1;
                    if attempt >= retry_budget {
                        quarantined[j] = true;
                    } else {
                        retries += 1;
                        requeue.push((j, attempt, e + (1usize << (attempt - 1))));
                    }
                }
            }
            groups.push(RecoveryGroup {
                jobs: committed,
                ranks: grp.ranks.clone().map(|i| survivors[i]).collect(),
                est_cost: cum,
            });
        }
        pending.retain(|&(j, _, _)| !resolved.contains(&j));
        pending.extend(requeue);
        pending.sort_unstable();
        epochs.push(RecoveryEpoch {
            newly_failed,
            survivors,
            groups,
        });
    }
    let stats = FaultStats {
        rank_failures: failed.len(),
        poisoned_attempts,
        retries,
        quarantined_jobs: quarantined.iter().filter(|&&q| q).count(),
        recovery_epochs: epochs.len(),
        final_world_size: world_size - failed.len(),
        ..FaultStats::default()
    };
    RecoverySchedule {
        world_size,
        retry_budget,
        job_costs: costs.to_vec(),
        epochs,
        job_epoch,
        job_attempts,
        quarantined,
        stats,
    }
}

/// Outcome of one scheduled batch.
pub struct SchedulerOutcome {
    /// Per-job results in submission order (gathered on world rank 0).
    pub results: Vec<JobResult>,
    /// The static work partition (epoch 0's grouping; the steal baseline).
    pub plan: SchedulePlan,
    /// The epoch/steal schedule the batch actually ran under.
    pub schedule: EpochSchedule,
    /// Steal telemetry: planned figures plus measured idle seconds.
    pub steal_stats: StealStats,
    /// World-level transfer counters (includes all subgroup traffic).
    pub world_stats: Arc<CommStats>,
    /// Fault-handling telemetry (all zeros when no fault plan is
    /// installed).
    pub fault_stats: FaultStats,
    /// The recovery schedule the batch executed under — `Some` exactly
    /// when a fault plan was installed. [`SchedulerOutcome::schedule`]
    /// then describes the *fault-free baseline* (what the batch would
    /// have done without faults); per-job reality (actual epoch,
    /// attempts, quarantine) is in the results and here.
    pub recovery: Option<RecoverySchedule>,
}

/// Distributed batch executor: a rank world carved into per-job
/// subcommunicator groups over one shared [`SubmatrixEngine`], rebalanced
/// between epochs. See the module docs for the five phases.
pub struct Scheduler {
    engine: Arc<SubmatrixEngine>,
    budget: RankBudget,
    policy: StealPolicy,
    trace_label: String,
    fault_plan: Option<FaultPlan>,
    retry_budget: usize,
}

impl Default for Scheduler {
    fn default() -> Self {
        // Group ranks supply the per-job concurrency; keep per-rank solves
        // sequential to avoid nested-pool oversubscription (the same
        // choice JobQueue::default makes for job-level parallelism).
        Scheduler::new(
            Arc::new(SubmatrixEngine::new(EngineOptions {
                parallel: false,
                ..EngineOptions::default()
            })),
            RankBudget::default(),
        )
    }
}

impl Scheduler {
    /// Build a scheduler over an existing engine (sharing its plan cache,
    /// e.g. with a serial [`JobQueue`](crate::jobs::JobQueue)). Epoch
    /// stealing is on by default; see [`Scheduler::with_policy`].
    pub fn new(engine: Arc<SubmatrixEngine>, budget: RankBudget) -> Self {
        Scheduler {
            engine,
            budget,
            policy: StealPolicy::default(),
            trace_label: "batch".to_string(),
            fault_plan: None,
            retry_budget: DEFAULT_RETRY_BUDGET,
        }
    }

    /// Set the steal policy (builder style).
    pub fn with_policy(mut self, policy: StealPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Install a deterministic fault plan (builder style): batches then
    /// run on the epoch-level recovery path (see the module docs) under
    /// [`sm_comsim::run_ranks_with_faults`]. The plan must not fail rank
    /// 0 — it is the coordinator that commits the fault consensus and
    /// gathers results. A fault plan supersedes [`StealPolicy`]: recovery
    /// always re-partitions between epochs (recovery *is* rebalancing).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        assert!(
            plan.fails_at(0).is_none(),
            "rank 0 is the coordinator and must not fail"
        );
        self.fault_plan = Some(plan);
        self
    }

    /// Set the per-job attempt budget used under fault injection
    /// (builder style; default [`DEFAULT_RETRY_BUDGET`]). A job whose
    /// every attempt up to the budget is poisoned is quarantined instead
    /// of retried forever.
    pub fn with_retry_budget(mut self, retry_budget: usize) -> Self {
        assert!(retry_budget >= 1, "retry budget must allow one attempt");
        self.retry_budget = retry_budget;
        self
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// The per-job attempt budget used under fault injection.
    pub fn retry_budget(&self) -> usize {
        self.retry_budget
    }

    /// Set the batch label used as the root `batch:<label>` span of every
    /// trace this scheduler records (builder style). Sessions asserting
    /// on span trees should pick a unique label and filter with
    /// `sm_trace::TraceSession::span_tree_under`, so unrelated concurrent
    /// batches cannot pollute the view. Purely observational: the label
    /// never influences scheduling.
    pub fn with_trace_label(mut self, label: &str) -> Self {
        self.trace_label = label.to_string();
        self
    }

    /// The batch label used for trace spans.
    pub fn trace_label(&self) -> &str {
        &self.trace_label
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<SubmatrixEngine> {
        &self.engine
    }

    /// The rank-budget policy.
    pub fn budget(&self) -> &RankBudget {
        &self.budget
    }

    /// The steal policy.
    pub fn policy(&self) -> StealPolicy {
        self.policy
    }

    /// Run a batch of one-shot matrix jobs over a `world_size`-rank world
    /// and gather the results (in submission order) on world rank 0.
    /// Convenience wrapper over [`Scheduler::run_batch`].
    pub fn run(&self, world_size: usize, jobs: Vec<MatrixJob>) -> SchedulerOutcome {
        self.run_batch(world_size, jobs.into_iter().map(BatchJob::Matrix).collect())
    }

    /// Run a mixed batch of [`BatchJob`]s — one-shot matrix evaluations
    /// and/or multi-iteration SCF jobs — over a `world_size`-rank world
    /// and gather the results (in submission order) on world rank 0.
    ///
    /// Every job kind rides the same machinery: perfmodel cost estimation
    /// (scaled by the job's iteration budget, see
    /// [`estimate_batch_job_cost`]), LPT group packing, epoch stealing,
    /// the shared plan cache with its per-group per-epoch hit/miss
    /// consensus, and the telemetry gather to world rank 0. SCF jobs
    /// additionally return per-iteration telemetry in
    /// [`JobResult::scf`].
    pub fn run_batch(&self, world_size: usize, jobs: Vec<BatchJob>) -> SchedulerOutcome {
        self.try_run_batch(world_size, jobs)
            .unwrap_or_else(|e| panic!("scheduled batch failed: {e}"))
    }

    /// Fallible [`Scheduler::run_batch`]: admission failures and
    /// unrecoverable communication errors surface as a typed
    /// [`SchedError`] instead of a panic.
    pub fn try_run_batch(
        &self,
        world_size: usize,
        jobs: Vec<BatchJob>,
    ) -> Result<SchedulerOutcome, SchedError> {
        for j in &jobs {
            // Validate on the caller thread: a bad job would otherwise
            // panic deep inside a rank thread (e.g. ScfDriver::run with a
            // zero iteration budget produces no density) and strand its
            // group's peers in their collectives.
            if j.input().grid().size() != 1 {
                return Err(SchedError::InvalidJob {
                    name: j.name().to_string(),
                    reason: "job matrices must be single-rank (replicated) handles".to_string(),
                });
            }
            if let BatchJob::Scf(spec) = j {
                if spec.scf.max_iter < 1 {
                    return Err(SchedError::InvalidJob {
                        name: spec.name.clone(),
                        reason: "max_iter == 0 (needs at least one iteration)".to_string(),
                    });
                }
            }
        }
        let costs: Vec<f64> = jobs.iter().map(estimate_batch_job_cost).collect();
        check_estimates(&jobs, &costs)?;
        let schedule = plan_epochs(&costs, world_size, &self.budget, self.policy);
        if let Some(plan) = &self.fault_plan {
            return self.run_batch_recovering(world_size, jobs, costs, schedule, plan);
        }
        {
            // Narrate the (already fixed) plan on the caller thread, under
            // the batch root span: planning stays a pure function of the
            // estimates, the trace only observes its output.
            let _batch = sm_trace::span(SpanKind::Batch, &self.trace_label);
            trace_schedule(&schedule);
        }
        let engine = &self.engine;
        let label = self.trace_label.as_str();
        let (jobs_ref, sched_ref) = (&jobs, &schedule);
        let (mut per_rank, world_stats) = run_ranks(world_size, |comm| {
            run_rank(engine, jobs_ref, sched_ref, label, comm)
        });
        let (results, (measured_idle, measured_max_idle)) = per_rank[0]
            .take()
            .expect("world rank 0 gathers every job result");
        let mut steal_stats = schedule.planned;
        steal_stats.measured_idle_seconds = measured_idle;
        steal_stats.measured_max_rank_idle_seconds = measured_max_idle;
        Ok(SchedulerOutcome {
            results,
            plan: schedule.static_plan.clone(),
            schedule,
            steal_stats,
            world_stats,
            fault_stats: FaultStats::default(),
            recovery: None,
        })
    }

    /// The fault-injected execution path: precompute the recovery
    /// schedule, narrate it, run the world under
    /// [`run_ranks_with_faults`], and merge planner + injection
    /// telemetry. `schedule` is the fault-free baseline, kept in the
    /// outcome for comparison.
    fn run_batch_recovering(
        &self,
        world_size: usize,
        jobs: Vec<BatchJob>,
        costs: Vec<f64>,
        schedule: EpochSchedule,
        plan: &FaultPlan,
    ) -> Result<SchedulerOutcome, SchedError> {
        let rec = plan_recovery(&costs, world_size, &self.budget, plan, self.retry_budget);
        {
            // Narrate the precomputed recovery schedule on the caller
            // thread: fault.injected per committed rank failure,
            // sched.retry per backoff re-queue, job.quarantined per
            // exhausted budget — all pure functions of the plan.
            let _batch = sm_trace::span(SpanKind::Batch, &self.trace_label);
            trace_recovery(&rec);
        }
        let engine = &self.engine;
        let label = self.trace_label.as_str();
        let (jobs_ref, rec_ref) = (&jobs, &rec);
        let (mut per_rank, world_stats, injected) =
            run_ranks_with_faults(world_size, plan.clone(), |comm| {
                run_rank_recovering(engine, jobs_ref, rec_ref, label, comm)
            });
        let (results, (measured_idle, measured_max_idle)) = per_rank[0]
            .take()
            .expect("rank 0 never fails")?
            .expect("world rank 0 gathers every job result");
        debug_assert_eq!(
            injected.rank_failures as usize, rec.stats.rank_failures,
            "runtime rank failures diverged from the committed plan"
        );
        let mut steal_stats = schedule.planned;
        steal_stats.measured_idle_seconds = measured_idle;
        steal_stats.measured_max_rank_idle_seconds = measured_max_idle;
        let fault_stats = FaultStats {
            dropped_messages: injected.dropped_messages,
            delayed_messages: injected.delayed_messages,
            slow_stalls: injected.slow_stalls,
            ..rec.stats
        };
        Ok(SchedulerOutcome {
            results,
            plan: schedule.static_plan.clone(),
            schedule,
            steal_stats,
            world_stats,
            fault_stats,
            recovery: Some(rec),
        })
    }
}

/// Parent-level tag of one result stream (`part` 0 = block meta, 1 = block
/// data, 2 = telemetry) of job `job`, in a namespace well clear of the
/// small constants the wire module uses elsewhere.
fn result_tag(job: usize, part: u64) -> u64 {
    wire::user_tag((1 << 40) | ((job as u64) * 4 + part))
}

/// Narrate a finished epoch/steal plan into the active trace (no-op when
/// tracing is disabled): one `sched.epoch` event per epoch (cost = the
/// epoch's steal horizon, with committed/deferred queue snapshots), one
/// `sched.queue` per group (cost = committed estimated cost), one
/// `sched.job` per committed queue entry **in execution order** (cost =
/// the job's static estimate; fields carry queue position, rank count and
/// steal attribution — the dependency edges `sm_trace::analyze`'s
/// critical-path walker reconstructs, new in trace schema v2), and one
/// `sched.steal` per stolen job at its decision point. Everything emitted
/// here is a pure function of the schedule, so traced span trees stay
/// deterministic across reruns.
fn trace_schedule(s: &EpochSchedule) {
    if !sm_trace::enabled() {
        return;
    }
    let costs = &s.static_plan.job_costs;
    for (e, ep) in s.epochs.iter().enumerate() {
        let _epoch = sm_trace::span(SpanKind::Epoch, e);
        let horizon = ep
            .groups
            .iter()
            .filter(|g| !g.jobs.is_empty())
            .map(|g| costs[g.jobs[0]] / g.ranks.len() as f64)
            .fold(0.0f64, f64::max);
        let committed: usize = ep.groups.iter().map(|g| g.jobs.len()).sum();
        let deferred = s.job_epoch.iter().filter(|&&je| je > e).count();
        sm_trace::emit(
            "sched.epoch",
            horizon,
            0.0,
            &[
                ("groups", ep.groups.len() as f64),
                ("committed", committed as f64),
                ("deferred", deferred as f64),
            ],
        );
        for (g, grp) in ep.groups.iter().enumerate() {
            let _group = sm_trace::span(SpanKind::Group, g);
            sm_trace::emit(
                "sched.queue",
                grp.est_cost,
                0.0,
                &[
                    ("jobs", grp.jobs.len() as f64),
                    ("ranks", grp.ranks.len() as f64),
                    ("rank_start", grp.ranks.start as f64),
                ],
            );
            for (pos, &j) in grp.jobs.iter().enumerate() {
                sm_trace::emit(
                    "sched.job",
                    costs[j],
                    0.0,
                    &[
                        ("job", j as f64),
                        ("pos", pos as f64),
                        ("ranks", grp.ranks.len() as f64),
                        ("stolen_ranks", s.job_stolen_ranks[j] as f64),
                    ],
                );
                if s.job_stolen_ranks[j] > 0 {
                    sm_trace::emit(
                        "sched.steal",
                        costs[j],
                        0.0,
                        &[
                            ("job", j as f64),
                            ("home_group", s.home_group[j] as f64),
                            ("stolen_ranks", s.job_stolen_ranks[j] as f64),
                        ],
                    );
                }
            }
        }
    }
}

/// Narrate a precomputed recovery schedule into the active trace (no-op
/// when tracing is disabled): one `fault.injected` per committed rank
/// failure, one `sched.epoch`/`sched.queue`/`sched.job` spine like
/// [`trace_schedule`]'s (jobs annotated with attempt numbers), one
/// `sched.retry` per poisoned attempt that re-enters the queue (with its
/// backoff target epoch), and one `job.quarantined` per exhausted retry
/// budget. Everything here is a pure function of the schedule, so traced
/// span trees stay deterministic across reruns of the same seed.
fn trace_recovery(r: &RecoverySchedule) {
    if !sm_trace::enabled() {
        return;
    }
    let costs = &r.job_costs;
    for (e, ep) in r.epochs.iter().enumerate() {
        let _epoch = sm_trace::span(SpanKind::Epoch, e);
        for &rank in &ep.newly_failed {
            sm_trace::emit(
                "fault.injected",
                0.0,
                0.0,
                &[("rank", rank as f64), ("epoch", e as f64)],
            );
        }
        let horizon = ep
            .groups
            .iter()
            .filter(|g| !g.jobs.is_empty())
            .map(|g| costs[g.jobs[0].job] / g.ranks.len() as f64)
            .fold(0.0f64, f64::max);
        sm_trace::emit(
            "sched.epoch",
            horizon,
            0.0,
            &[
                ("groups", ep.groups.len() as f64),
                ("survivors", ep.survivors.len() as f64),
                ("failed", ep.newly_failed.len() as f64),
            ],
        );
        for (g, grp) in ep.groups.iter().enumerate() {
            let _group = sm_trace::span(SpanKind::Group, g);
            sm_trace::emit(
                "sched.queue",
                grp.est_cost,
                0.0,
                &[
                    ("jobs", grp.jobs.len() as f64),
                    ("ranks", grp.ranks.len() as f64),
                    ("rank_start", grp.ranks[0] as f64),
                ],
            );
            for (pos, att) in grp.jobs.iter().enumerate() {
                sm_trace::emit(
                    "sched.job",
                    costs[att.job],
                    0.0,
                    &[
                        ("job", att.job as f64),
                        ("pos", pos as f64),
                        ("ranks", grp.ranks.len() as f64),
                        ("attempt", att.attempt as f64),
                        ("poisoned", att.poisoned as u64 as f64),
                    ],
                );
                if att.poisoned {
                    if att.attempt >= r.retry_budget {
                        sm_trace::emit(
                            "job.quarantined",
                            costs[att.job],
                            0.0,
                            &[("job", att.job as f64), ("attempts", att.attempt as f64)],
                        );
                    } else {
                        sm_trace::emit(
                            "sched.retry",
                            costs[att.job],
                            0.0,
                            &[
                                ("job", att.job as f64),
                                ("attempt", att.attempt as f64),
                                ("next_epoch", (e + (1usize << (att.attempt - 1))) as f64),
                            ],
                        );
                    }
                }
            }
        }
    }
}

/// One world rank's share of a scheduled batch: per epoch, split off the
/// group subcommunicator (tearing down the previous epoch's — regrouping
/// is always a fresh one-level split from the world comm), run the
/// epoch's jobs, and (on world rank 0) gather every job's result plus the
/// measured `(total, max)` per-rank idle seconds.
fn run_rank(
    engine: &Arc<SubmatrixEngine>,
    jobs: &[BatchJob],
    schedule: &EpochSchedule,
    label: &str,
    comm: &ThreadComm,
) -> Option<(Vec<JobResult>, (f64, f64))> {
    // Root span of everything this rank does for the batch: rank threads
    // are created fresh per batch, so the context stack starts empty and
    // every nested span/metric lands under `batch:<label>/...`.
    let _batch_span = sm_trace::span(SpanKind::Batch, label);
    let t_start = Instant::now();
    let mut busy = 0.0f64;
    for (e, epoch) in schedule.epochs.iter().enumerate() {
        let group = epoch.group_of_rank(comm.rank());
        // Mixing the epoch into the color gives every epoch's groups a
        // fresh tag-namespace salt; the split is collective over the whole
        // world, so it doubles as the epoch barrier.
        let color = group.map_or(IDLE_COLOR, |g| ((e as u64) << 32) | g as u64);
        let sub = comm.split(color, comm.rank() as u64);
        let Some(g) = group else { continue };
        let _epoch_span = sm_trace::span(SpanKind::Epoch, e);
        let _group_span = sm_trace::span(SpanKind::Group, g);

        for &j in &epoch.groups[g].jobs {
            busy += execute_job_on_group(
                engine,
                jobs,
                j,
                schedule.static_plan.job_costs[j],
                schedule.job_stolen_ranks[j],
                1,
                &sub,
                comm,
                e,
            );
        }
    }

    // Measured idle accounting: one world-level collective after the last
    // epoch (every rank reaches it, so it cannot interleave with subgroup
    // traffic).
    let wall = t_start.elapsed().as_secs_f64();
    let per_rank = comm.allgather_f64(&[busy, wall]);

    if comm.rank() != 0 {
        return None;
    }
    let wall_max = per_rank.iter().map(|v| v[1]).fold(0.0f64, f64::max);
    let mut idle_total = 0.0f64;
    let mut idle_max = 0.0f64;
    for (r, v) in per_rank.iter().enumerate() {
        let idle = (wall_max - v[0]).max(0.0);
        idle_total += idle;
        idle_max = idle_max.max(idle);
        // One `rank.idle` per world rank, emitted by rank 0 under the
        // batch root: deterministic count, wall-derived values confined
        // to annotations (wall_s/fields), cost pinned at 0.
        sm_trace::emit(
            "rank.idle",
            0.0,
            idle,
            &[("rank", r as f64), ("busy_s", v[0]), ("wall_s", v[1])],
        );
    }

    // World rank 0: collect every job from its group root (its own sends
    // arrive through the local mailbox).
    let results = (0..jobs.len())
        .map(|j| {
            let root = schedule.root_of_job(j);
            let meta = comm.recv(root, result_tag(j, 0)).into_u64();
            let data = comm.recv(root, result_tag(j, 1));
            let telemetry = comm.recv(root, result_tag(j, 2)).into_f64();
            let dims = jobs[j].input().dims();
            let mut result = DbcsrMatrix::new(dims.clone(), 0, 1);
            // The meta header self-describes the value format (f32 for
            // plain-Fp32 jobs), so the unpack needs no job context.
            for ((br, bc), blk) in wire::unpack_blocks_prec(dims, &meta, data) {
                result.insert_block(br, bc, blk);
            }
            let dec = decode_telemetry(&telemetry);
            JobResult {
                name: jobs[j].name().to_string(),
                result,
                report: dec.report,
                seconds: dec.seconds,
                group_size: dec.group_size,
                comm_bytes: dec.comm_bytes,
                comm_msgs: dec.comm_msgs,
                epoch: dec.epoch,
                stolen_ranks: dec.stolen_ranks,
                attempts: dec.attempts,
                quarantined: dec.quarantined,
                scf: dec.scf,
            }
        })
        .collect();
    Some((results, (idle_total, idle_max)))
}

/// Execute one job collectively on its group subcommunicator and — from
/// the group root — ship the packed result and telemetry to world rank 0
/// over the job's reserved tags. This is the single job body both the
/// fault-free executor ([`run_rank`]) and the recovery executor
/// ([`run_rank_recovering`]) run: the bitwise-equivalence contract
/// (recovered job ≡ serial queue) holds precisely because a retried
/// attempt re-enters the same code with only the group membership
/// changed. Returns the wall seconds this rank spent on the job.
#[allow(clippy::too_many_arguments)]
fn execute_job_on_group(
    engine: &Arc<SubmatrixEngine>,
    jobs: &[BatchJob],
    j: usize,
    est_cost: f64,
    stolen_ranks: usize,
    attempt: usize,
    sub: &SubComm<'_, ThreadComm>,
    comm: &ThreadComm,
    epoch: usize,
) -> f64 {
    let job = &jobs[j];
    let _job_span = sm_trace::span(SpanKind::Job, j);
    let bytes0 = sub.stats().total_bytes();
    let msgs0 = sub.stats().total_msgs();
    let t = Instant::now();

    // Scatter the replicated input: each rank keeps the blocks it
    // owns under the group-sized process grid (a local selection —
    // the single-rank handle is replicated shared memory, the
    // simulator's stand-in for an MPI_COMM_SELF matrix every rank
    // holds).
    let input = job.input();
    let mut local = DbcsrMatrix::new(input.dims().clone(), sub.rank(), sub.size());
    for (&(br, bc), blk) in input.store().iter() {
        if local.is_mine(br, bc) {
            local.insert_block(br, bc, blk.clone());
        }
    }

    // Execute collectively on the subgroup — one engine
    // evaluation for a matrix job, the whole multi-iteration SCF
    // loop for an SCF job. Either way every plan goes through the
    // shared, contended cache, whose hit/miss consensus runs on
    // `sub`, i.e. per-group per-epoch — exactly the ranks that
    // must agree on entering the collective pattern gather (SCF
    // jobs re-run that consensus every iteration, still on `sub`).
    let (mut result, mut report, built_now, result_format, scf_local) = match job {
        BatchJob::Matrix(mjob) => {
            let (eplan, built_now) = engine.plan_for_matrix_traced(&local, sub);
            let (mut result, mut report) =
                engine.execute(&eplan, &local, mjob.mu0, &mjob.numeric, sub);
            mjob.output.finalize(&mut result, mjob.numeric.precision);
            report.record_planning(built_now, &eplan);
            // The value encoding of the result gather follows the
            // job's precision: plain-Fp32 results are
            // f32-representable, so the f32 wire is lossless and
            // halves the result-gather bytes too.
            let format = if mjob.numeric.precision.scatter_is_f32() {
                ValueFormat::F32
            } else {
                ValueFormat::F64
            };
            (result, report, built_now, format, None)
        }
        BatchJob::Scf(spec) => {
            // The driver shares the scheduler's engine (and its
            // bounded plan cache) across every concurrent system.
            let driver = ScfDriver::with_engine(spec.scf.clone(), engine.clone());
            let r = driver.run(&local, spec.mu0, spec.n_electrons, sub);
            // Group-sum the per-iteration byte telemetry: the
            // iteration count is group-collective (the convergence
            // decision is made on a reduced energy every rank
            // holds), so the flattened vectors line up and the
            // per-rank shares sum to whole-group traffic.
            let mut bytes: Vec<f64> = r
                .iterations
                .iter()
                .flat_map(|i| [i.gather_value_bytes as f64, i.scatter_value_bytes as f64])
                .collect();
            sub.allreduce_f64(ReduceOp::Sum, &mut bytes);
            let last = r.iterations.last().expect("SCF runs ≥ 1 iteration");
            let scf = ScfTelemetry {
                iterations: r.iterations.len(),
                converged: r.converged,
                final_energy: last.energy,
                final_electrons: last.electrons,
                gather_value_bytes: bytes.iter().step_by(2).map(|&b| b as u64).collect(),
                scatter_value_bytes: bytes.iter().skip(1).step_by(2).map(|&b| b as u64).collect(),
            };
            // SCF densities stay f64 under every precision (the
            // driver never applies the plain-Fp32 result
            // rounding), so the result gather always rides the
            // f64 wire — losslessly.
            (
                r.density,
                r.report,
                r.symbolic_builds > 0,
                ValueFormat::F64,
                Some(scf),
            )
        }
    };

    // Gather result blocks to the group root: plain point-to-point
    // sends (an alltoallv here would move O(group²) empty
    // payloads and pollute the per-job traffic telemetry).
    let mut gathered: Vec<((usize, usize), sm_linalg::Matrix)> = result.store_mut().drain();
    if sub.rank() != 0 {
        let (meta, data) =
            wire::pack_blocks_prec(gathered.iter().map(|(c, b)| (c, b)), result_format);
        sub.send(0, GATHER_META_TAG, Payload::U64(meta));
        sub.send(0, GATHER_DATA_TAG, data);
        gathered.clear();
    } else {
        for src in 1..sub.size() {
            let meta = sub.recv(src, GATHER_META_TAG).into_u64();
            let data = sub.recv(src, GATHER_DATA_TAG);
            gathered.extend(wire::unpack_blocks_prec(input.dims(), &meta, data));
        }
    }
    let seconds = t.elapsed().as_secs_f64();
    if sm_trace::enabled() {
        // Deterministic cost = the job's perfmodel estimate; wall
        // seconds and stolen ranks ride as annotations only.
        sm_trace::emit(
            "job.done",
            est_cost,
            seconds,
            &[
                ("group_size", sub.size() as f64),
                ("stolen_ranks", stolen_ranks as f64),
            ],
        );
        sm_trace::hist_seconds(&sm_trace::scoped_root("job.seconds"), seconds);
    }

    // Group-wide telemetry: total subgroup traffic this job moved
    // (Sum), the critical-path phase timings, and the symbolic
    // work — any rank may have rebuilt an evicted plan while the
    // root hit, so plan_cached/symbolic_seconds must be reduced
    // too, not taken from the root alone (Max doubles as OR for
    // the 0/1 built flag). The plan's TransferStats are per-rank
    // shares and are Sum-reduced to whole-run numbers, matching
    // what the serial queue reports for the same job.
    let mut traffic = [
        (sub.stats().total_bytes() - bytes0) as f64,
        (sub.stats().total_msgs() - msgs0) as f64,
        report.transfers.unique_bytes as f64,
        report.transfers.naive_bytes as f64,
        report.transfers.unique_blocks as f64,
        report.transfers.total_references as f64,
        report.gather_value_bytes as f64,
        report.scatter_value_bytes as f64,
    ];
    sub.allreduce_f64(ReduceOp::Sum, &mut traffic);
    report.transfers = TransferStats {
        unique_bytes: traffic[2] as u64,
        naive_bytes: traffic[3] as u64,
        unique_blocks: traffic[4] as u64,
        total_references: traffic[5] as u64,
    };
    report.gather_value_bytes = traffic[6] as u64;
    report.scatter_value_bytes = traffic[7] as u64;
    let mut phases = [
        report.gather_seconds,
        report.solve_seconds,
        report.scatter_seconds,
        seconds,
        report.symbolic_seconds,
        if built_now { 1.0 } else { 0.0 },
    ];
    sub.allreduce_f64(ReduceOp::Max, &mut phases);
    report.gather_seconds = phases[0];
    report.solve_seconds = phases[1];
    report.scatter_seconds = phases[2];
    report.symbolic_seconds = phases[4];
    report.plan_cached = phases[5] == 0.0;

    // Group root ships the finished job to world rank 0 — in the
    // job's result format too: the largest per-job message also
    // halves for plain-Fp32 jobs, still losslessly.
    if sub.rank() == 0 {
        let mut root_mat = DbcsrMatrix::new(input.dims().clone(), 0, 1);
        for ((br, bc), blk) in gathered {
            root_mat.insert_block(br, bc, blk);
        }
        let (meta, data) = wire::pack_blocks_prec(root_mat.store().iter(), result_format);
        comm.send(0, result_tag(j, 0), Payload::U64(meta));
        comm.send(0, result_tag(j, 1), data);
        let telemetry = encode_telemetry(
            &report,
            phases[3],
            sub.size(),
            traffic[0] as u64,
            traffic[1] as u64,
            epoch,
            stolen_ranks,
            attempt,
            false,
            scf_local.as_ref(),
        );
        comm.send(0, result_tag(j, 2), Payload::F64(telemetry));
    }
    t.elapsed().as_secs_f64()
}

/// One world rank's share of a fault-injected batch (see "Faults and
/// recovery" in the module docs). Per recovery epoch:
///
/// 1. a rank whose [`FaultPlan`] death fires at this epoch boundary
///    poisons its peers and leaves — the poison is what lets every
///    pending receive on it fail fast instead of hanging;
/// 2. the survivors run the **fault consensus**: heartbeats to rank 0
///    under a deadline, rank 0 fans the committed failed-set view back
///    out, and every survivor asserts it equals the pure plan's view
///    (the recovery schedule is a function of that view, so divergence
///    is a protocol bug, not a handleable condition);
/// 3. groups form with [`split_known`] from the agreed member lists —
///    no world collective, so the dead are never waited on — and run
///    their committed attempts through [`execute_job_on_group`].
///    Poisoned attempts are skipped by the whole group from the pure
///    plan alone (fail-stop at the attempt boundary: no partial sends).
///
/// Dead ranks and non-root survivors return `Ok(None)`; world rank 0
/// returns every job's result (quarantined placeholders synthesized
/// locally — their groups never shipped anything) plus the measured
/// `(total, max)` idle seconds over the final survivors, or a typed
/// [`SchedError`] if collection fails unrecoverably.
#[allow(clippy::type_complexity)]
fn run_rank_recovering(
    engine: &Arc<SubmatrixEngine>,
    jobs: &[BatchJob],
    rec: &RecoverySchedule,
    label: &str,
    comm: &ThreadComm,
) -> Result<Option<(Vec<JobResult>, (f64, f64))>, SchedError> {
    let _batch_span = sm_trace::span(SpanKind::Batch, label);
    let me = comm.rank();
    let world = comm.size();
    let my_death = comm.fault_plan().and_then(|p| p.fails_at(me));
    let t_start = Instant::now();
    let mut busy = 0.0f64;

    for (e, ep) in rec.epochs.iter().enumerate() {
        // A planned death fires at the epoch boundary, before the
        // consensus below — which is exactly how the survivors find out.
        if my_death == Some(e) {
            comm.poison_peers();
            return Ok(None);
        }

        // Fault consensus — the plan-cache-consensus trick lifted to the
        // world level: every survivor commits an identical failed-set
        // view before any group forms. Rank 0 collects heartbeats with
        // deadline receives (a dead peer surfaces as a typed error,
        // never a hang) and fans the committed view out to the
        // survivors of *this* epoch.
        let hb = wire::user_tag(CONSENSUS_NS | e as u64);
        let view = wire::user_tag(CONSENSUS_NS | CONSENSUS_VIEW_BIT | e as u64);
        let prev_survivors: Vec<usize> = if e == 0 {
            (0..world).collect()
        } else {
            rec.epochs[e - 1].survivors.clone()
        };
        let committed: Vec<u64> = if me == 0 {
            let mut dead: Vec<u64> = (0..world)
                .filter(|r| !prev_survivors.contains(r))
                .map(|r| r as u64)
                .collect();
            for &r in prev_survivors.iter().filter(|&&r| r != 0) {
                if comm.recv_deadline(r, hb, CONTROL_TIMEOUT).is_err() {
                    dead.push(r as u64);
                }
            }
            dead.sort_unstable();
            for &r in ep.survivors.iter().filter(|&&r| r != 0) {
                comm.send(r, view, Payload::U64(dead.clone()));
            }
            dead
        } else {
            comm.send(0, hb, Payload::U64(Vec::new()));
            comm.recv_deadline(0, view, CONTROL_TIMEOUT)?.into_u64()
        };
        let planned: Vec<u64> = (0..world)
            .filter(|r| !ep.survivors.contains(r))
            .map(|r| r as u64)
            .collect();
        // Deterministic plans observed through poison-backed failure
        // detection must commit exactly the planned view (user plans
        // that drop control-tag messages void this — see module docs).
        assert_eq!(
            committed, planned,
            "rank {me}: epoch {e} fault consensus diverged from the plan"
        );

        // Group formation from the agreed member lists.
        if let Some(g) = ep.group_of_rank(me) {
            let grp = &ep.groups[g];
            let _epoch_span = sm_trace::span(SpanKind::Epoch, e);
            let _group_span = sm_trace::span(SpanKind::Group, g);
            let color = ((e as u64) << 32) | g as u64;
            let sub = split_known(comm, color, grp.ranks.clone());
            for att in &grp.jobs {
                if att.poisoned {
                    // Retry/quarantine bookkeeping happened at planning
                    // time; at run time the whole group just skips.
                    continue;
                }
                busy += execute_job_on_group(
                    engine,
                    jobs,
                    att.job,
                    rec.job_costs[att.job],
                    0,
                    att.attempt,
                    &sub,
                    comm,
                    e,
                );
            }
        }
    }

    // Survivor-only idle accounting: no world collective may follow the
    // last epoch (the dead would never join it), so survivors report
    // point-to-point and rank 0 aggregates — emitting `rank.idle` for
    // the final survivors only keeps the event count deterministic.
    let wall = t_start.elapsed().as_secs_f64();
    if me != 0 {
        comm.send(
            0,
            wire::user_tag(IDLE_NS | me as u64),
            Payload::F64(vec![busy, wall]),
        );
        return Ok(None);
    }
    let final_survivors: Vec<usize> = rec
        .epochs
        .last()
        .map(|ep| ep.survivors.clone())
        .unwrap_or_else(|| (0..world).collect());
    let mut per_rank: Vec<(usize, f64, f64)> = vec![(0, busy, wall)];
    for &r in final_survivors.iter().filter(|&&r| r != 0) {
        let v = comm
            .recv_deadline(r, wire::user_tag(IDLE_NS | r as u64), CONTROL_TIMEOUT)?
            .into_f64();
        per_rank.push((r, v[0], v[1]));
    }
    let wall_max = per_rank.iter().map(|&(_, _, w)| w).fold(0.0f64, f64::max);
    let mut idle_total = 0.0f64;
    let mut idle_max = 0.0f64;
    for &(r, b, w) in &per_rank {
        let idle = (wall_max - b).max(0.0);
        idle_total += idle;
        idle_max = idle_max.max(idle);
        sm_trace::emit(
            "rank.idle",
            0.0,
            idle,
            &[("rank", r as f64), ("busy_s", b), ("wall_s", w)],
        );
    }

    // Result collection: every non-quarantined job's final root is read
    // off the deterministic commit history; quarantined jobs get a
    // locally synthesized empty placeholder carrying the fault
    // bookkeeping (their groups never executed, so nothing was sent).
    let results = (0..jobs.len())
        .map(|j| {
            if rec.quarantined[j] {
                return Ok(JobResult {
                    name: jobs[j].name().to_string(),
                    result: DbcsrMatrix::new(jobs[j].input().dims().clone(), 0, 1),
                    report: empty_report(job_precision(&jobs[j])),
                    seconds: 0.0,
                    group_size: 0,
                    comm_bytes: 0,
                    comm_msgs: 0,
                    epoch: rec.job_epoch[j],
                    stolen_ranks: 0,
                    attempts: rec.job_attempts[j],
                    quarantined: true,
                    scf: None,
                });
            }
            let root = rec.root_of_job(j);
            let meta = comm
                .recv_deadline(root, result_tag(j, 0), CONTROL_TIMEOUT)?
                .into_u64();
            let data = comm.recv_deadline(root, result_tag(j, 1), CONTROL_TIMEOUT)?;
            let telemetry = comm
                .recv_deadline(root, result_tag(j, 2), CONTROL_TIMEOUT)?
                .into_f64();
            let dims = jobs[j].input().dims();
            let mut result = DbcsrMatrix::new(dims.clone(), 0, 1);
            for ((br, bc), blk) in wire::unpack_blocks_prec(dims, &meta, data) {
                result.insert_block(br, bc, blk);
            }
            let dec = decode_telemetry(&telemetry);
            Ok(JobResult {
                name: jobs[j].name().to_string(),
                result,
                report: dec.report,
                seconds: dec.seconds,
                group_size: dec.group_size,
                comm_bytes: dec.comm_bytes,
                comm_msgs: dec.comm_msgs,
                epoch: dec.epoch,
                stolen_ranks: dec.stolen_ranks,
                attempts: dec.attempts,
                quarantined: dec.quarantined,
                scf: dec.scf,
            })
        })
        .collect::<Result<Vec<_>, SchedError>>()?;
    Ok(Some((results, (idle_total, idle_max))))
}

/// All-zero [`EngineReport`] backing a quarantined job's placeholder.
fn empty_report(precision: Precision) -> EngineReport {
    EngineReport {
        n_submatrices: 0,
        max_dim: 0,
        avg_dim: 0.0,
        total_cost: 0.0,
        transfers: TransferStats::default(),
        precision,
        gather_value_bytes: 0,
        scatter_value_bytes: 0,
        mu: 0.0,
        bisect_iterations: 0,
        plan_cached: false,
        symbolic_seconds: 0.0,
        gather_seconds: 0.0,
        solve_seconds: 0.0,
        scatter_seconds: 0.0,
        backend: SolveBackend::Dense,
        sparse_filtered_nnz: 0,
        sparse_flops: 0,
    }
}

/// The numeric precision a job was configured to run under.
fn job_precision(job: &BatchJob) -> Precision {
    match job {
        BatchJob::Matrix(j) => j.numeric.precision,
        BatchJob::Scf(j) => j.scf.numeric.precision,
    }
}

/// Stable wire code of a [`Precision`] inside the telemetry record.
fn precision_code(p: Precision) -> f64 {
    match p {
        Precision::Fp64 => 0.0,
        Precision::Fp32 => 1.0,
        Precision::Fp32Refined => 2.0,
    }
}

/// Inverse of [`precision_code`].
fn precision_from_code(x: f64) -> Precision {
    match x as u64 {
        0 => Precision::Fp64,
        1 => Precision::Fp32,
        2 => Precision::Fp32Refined,
        other => panic!("unknown precision code {other}"),
    }
}

/// Stable wire code of a [`SolveBackend`] inside the telemetry record.
fn backend_code(b: SolveBackend) -> f64 {
    match b {
        SolveBackend::Dense => 0.0,
        SolveBackend::SparseCsr => 1.0,
    }
}

/// Inverse of [`backend_code`].
fn backend_from_code(x: f64) -> SolveBackend {
    match x as u64 {
        0 => SolveBackend::Dense,
        1 => SolveBackend::SparseCsr,
        other => panic!("unknown solve-backend code {other}"),
    }
}

/// Flatten a job's telemetry — the group root's [`EngineReport`] plus
/// wall-time, group size, subgroup traffic and steal attribution — into a
/// versioned self-describing [`TelemetryRecord`]
/// (`sm_dbcsr::wire::TELEMETRY_SCHEMA_VERSION`) for the root gather.
/// Counters ride as `f64` (exact up to 2⁵³, far beyond any simulated
/// run). An SCF job appends its extension fields, with the per-iteration
/// byte telemetry as repeated `tele::SCF_ITER_*` entries in iteration
/// order — one wire format carries both job kinds, distinguished by the
/// presence of [`tele::SCF_ITERATIONS`].
#[allow(clippy::too_many_arguments)]
fn encode_telemetry(
    report: &EngineReport,
    seconds: f64,
    group_size: usize,
    comm_bytes: u64,
    comm_msgs: u64,
    epoch: usize,
    stolen_ranks: usize,
    attempts: usize,
    quarantined: bool,
    scf: Option<&ScfTelemetry>,
) -> Vec<f64> {
    let mut rec = TelemetryRecord::new();
    rec.push(tele::N_SUBMATRICES, report.n_submatrices as f64);
    rec.push(tele::MAX_DIM, report.max_dim as f64);
    rec.push(tele::AVG_DIM, report.avg_dim);
    rec.push(tele::TOTAL_COST, report.total_cost);
    rec.push(tele::UNIQUE_BYTES, report.transfers.unique_bytes as f64);
    rec.push(tele::NAIVE_BYTES, report.transfers.naive_bytes as f64);
    rec.push(tele::UNIQUE_BLOCKS, report.transfers.unique_blocks as f64);
    rec.push(
        tele::TOTAL_REFERENCES,
        report.transfers.total_references as f64,
    );
    rec.push(tele::MU, report.mu);
    rec.push(tele::BISECT_ITERATIONS, report.bisect_iterations as f64);
    rec.push(tele::PLAN_CACHED, report.plan_cached as u64 as f64);
    rec.push(tele::SYMBOLIC_SECONDS, report.symbolic_seconds);
    rec.push(tele::GATHER_SECONDS, report.gather_seconds);
    rec.push(tele::SOLVE_SECONDS, report.solve_seconds);
    rec.push(tele::SCATTER_SECONDS, report.scatter_seconds);
    rec.push(tele::SECONDS, seconds);
    rec.push(tele::GROUP_SIZE, group_size as f64);
    rec.push(tele::COMM_BYTES, comm_bytes as f64);
    rec.push(tele::COMM_MSGS, comm_msgs as f64);
    rec.push(tele::PRECISION_CODE, precision_code(report.precision));
    rec.push(tele::GATHER_VALUE_BYTES, report.gather_value_bytes as f64);
    rec.push(tele::SCATTER_VALUE_BYTES, report.scatter_value_bytes as f64);
    rec.push(tele::EPOCH, epoch as f64);
    rec.push(tele::STOLEN_RANKS, stolen_ranks as f64);
    rec.push(tele::ATTEMPTS, attempts as f64);
    rec.push(tele::QUARANTINED, quarantined as u64 as f64);
    rec.push(tele::SOLVE_BACKEND_CODE, backend_code(report.backend));
    rec.push(tele::SPARSE_FILTERED_NNZ, report.sparse_filtered_nnz as f64);
    rec.push(tele::SPARSE_FLOPS, report.sparse_flops as f64);
    if let Some(s) = scf {
        rec.push(tele::SCF_ITERATIONS, s.iterations as f64);
        rec.push(tele::SCF_CONVERGED, if s.converged { 1.0 } else { 0.0 });
        rec.push(tele::SCF_FINAL_ENERGY, s.final_energy);
        rec.push(tele::SCF_FINAL_ELECTRONS, s.final_electrons);
        for &b in &s.gather_value_bytes {
            rec.push(tele::SCF_ITER_GATHER_BYTES, b as f64);
        }
        for &b in &s.scatter_value_bytes {
            rec.push(tele::SCF_ITER_SCATTER_BYTES, b as f64);
        }
    }
    rec.encode()
}

/// A job's telemetry record, decoded — one field per [`JobResult`]
/// scalar the wire carries.
struct DecodedTelemetry {
    report: EngineReport,
    seconds: f64,
    group_size: usize,
    comm_bytes: u64,
    comm_msgs: u64,
    epoch: usize,
    stolen_ranks: usize,
    attempts: usize,
    quarantined: bool,
    scf: Option<ScfTelemetry>,
}

/// Inverse of [`encode_telemetry`]. Panics (with the decoder's own clear
/// message) on schema-version mismatch or truncation — inside one
/// process both ends are compiled together, so a mismatch here is a bug,
/// not an input error.
fn decode_telemetry(x: &[f64]) -> DecodedTelemetry {
    let rec = TelemetryRecord::decode(x).unwrap_or_else(|e| panic!("result-gather {e}"));
    let get = |field: u32| {
        rec.get(field)
            .unwrap_or_else(|| panic!("telemetry record missing field id {field}"))
    };
    let scf = rec.get(tele::SCF_ITERATIONS).map(|iters| ScfTelemetry {
        iterations: iters as usize,
        converged: get(tele::SCF_CONVERGED) != 0.0,
        final_energy: get(tele::SCF_FINAL_ENERGY),
        final_electrons: get(tele::SCF_FINAL_ELECTRONS),
        gather_value_bytes: rec
            .get_all(tele::SCF_ITER_GATHER_BYTES)
            .into_iter()
            .map(|b| b as u64)
            .collect(),
        scatter_value_bytes: rec
            .get_all(tele::SCF_ITER_SCATTER_BYTES)
            .into_iter()
            .map(|b| b as u64)
            .collect(),
    });
    DecodedTelemetry {
        report: EngineReport {
            n_submatrices: get(tele::N_SUBMATRICES) as usize,
            max_dim: get(tele::MAX_DIM) as usize,
            avg_dim: get(tele::AVG_DIM),
            total_cost: get(tele::TOTAL_COST),
            transfers: TransferStats {
                unique_bytes: get(tele::UNIQUE_BYTES) as u64,
                naive_bytes: get(tele::NAIVE_BYTES) as u64,
                unique_blocks: get(tele::UNIQUE_BLOCKS) as u64,
                total_references: get(tele::TOTAL_REFERENCES) as u64,
            },
            precision: precision_from_code(get(tele::PRECISION_CODE)),
            gather_value_bytes: get(tele::GATHER_VALUE_BYTES) as u64,
            scatter_value_bytes: get(tele::SCATTER_VALUE_BYTES) as u64,
            mu: get(tele::MU),
            bisect_iterations: get(tele::BISECT_ITERATIONS) as usize,
            plan_cached: get(tele::PLAN_CACHED) != 0.0,
            symbolic_seconds: get(tele::SYMBOLIC_SECONDS),
            gather_seconds: get(tele::GATHER_SECONDS),
            solve_seconds: get(tele::SOLVE_SECONDS),
            scatter_seconds: get(tele::SCATTER_SECONDS),
            backend: backend_from_code(get(tele::SOLVE_BACKEND_CODE)),
            sparse_filtered_nnz: get(tele::SPARSE_FILTERED_NNZ) as u64,
            sparse_flops: get(tele::SPARSE_FLOPS) as u64,
        },
        seconds: get(tele::SECONDS),
        group_size: get(tele::GROUP_SIZE) as usize,
        comm_bytes: get(tele::COMM_BYTES) as u64,
        comm_msgs: get(tele::COMM_MSGS) as u64,
        epoch: get(tele::EPOCH) as usize,
        stolen_ranks: get(tele::STOLEN_RANKS) as usize,
        attempts: get(tele::ATTEMPTS) as usize,
        quarantined: get(tele::QUARANTINED) != 0.0,
        scf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_empty_and_single() {
        let p = partition(&[], 4, &RankBudget::default());
        assert!(p.groups.is_empty());
        let p = partition(&[5.0], 4, &RankBudget::default());
        assert_eq!(p.groups.len(), 1);
        assert_eq!(p.groups[0].ranks, 0..4);
        assert_eq!(p.groups[0].jobs, vec![0]);
    }

    #[test]
    fn partition_allocates_ranks_proportionally() {
        // Job 0 is 3x the work of each of jobs 1..3; world of 6 ranks,
        // 4 jobs -> 4 groups, the heavy job's group gets the spare ranks.
        let p = partition(&[9.0, 3.0, 3.0, 3.0], 6, &RankBudget::default());
        assert_eq!(p.groups.len(), 4);
        let g0 = p.group_of_job(0);
        assert_eq!(p.groups[g0].ranks.len(), 3);
        let total: usize = p.groups.iter().map(|g| g.ranks.len()).sum();
        assert_eq!(total, 6);
        // Ranges are contiguous and disjoint.
        let mut next = 0;
        for g in &p.groups {
            assert_eq!(g.ranks.start, next);
            next = g.ranks.end;
        }
    }

    #[test]
    fn partition_folds_leftover_ranks_into_largest_group() {
        // Regression: with every group capped, spare ranks used to sit
        // idle for the whole batch; they now fold into the largest group
        // (lowest index breaking ties).
        let budget = RankBudget {
            max_group_size: Some(2),
            max_groups: Some(2),
        };
        let p = partition(&[1.0, 1.0, 1.0, 1.0], 8, &budget);
        assert_eq!(p.groups.len(), 2);
        // Both groups reach the cap (2), then the 4 leftover ranks fold
        // into group 0.
        assert_eq!(p.groups[0].ranks, 0..6);
        assert_eq!(p.groups[1].ranks, 6..8);
        // No rank is idle.
        for r in 0..8 {
            assert!(p.group_of_rank(r).is_some(), "rank {r} left idle");
        }
    }

    #[test]
    fn partition_respects_caps() {
        let budget = RankBudget {
            max_group_size: Some(2),
            max_groups: Some(2),
        };
        // World exactly covered by the caps: no folding needed.
        let p = partition(&[1.0, 1.0, 1.0, 1.0], 4, &budget);
        assert_eq!(p.groups.len(), 2);
        for g in &p.groups {
            assert_eq!(g.ranks.len(), 2);
            assert_eq!(g.jobs.len(), 2);
        }
        assert_eq!(p.group_of_rank(3), Some(1));
    }

    #[test]
    fn partition_is_longest_job_first() {
        let p = partition(&[1.0, 8.0, 2.0], 2, &RankBudget::default());
        // Heaviest job (1) alone on one group; 2 and 0 share the other,
        // heavier first.
        let g1 = p.group_of_job(1);
        assert_eq!(p.groups[g1].jobs, vec![1]);
        let other = 1 - g1;
        assert_eq!(p.groups[other].jobs, vec![2, 0]);
    }

    #[test]
    fn balanced_batch_collapses_to_one_epoch() {
        // 4 equal jobs on 4 groups: nothing to steal, the epoch plan IS
        // the static plan.
        let s = plan_epochs(&[1.0; 4], 4, &RankBudget::default(), StealPolicy::default());
        assert_eq!(s.epochs.len(), 1);
        assert_eq!(s.planned.epochs, 1);
        assert_eq!(s.planned.stolen_jobs, 0);
        assert_eq!(s.planned.stolen_ranks, 0);
        assert_eq!(
            s.planned.est_idle_cost_epochs,
            s.planned.est_idle_cost_static
        );
        for (g, grp) in s.epochs[0].groups.iter().enumerate() {
            assert_eq!(grp.jobs, s.static_plan.groups[g].jobs);
            assert_eq!(grp.ranks, s.static_plan.groups[g].ranks);
        }
    }

    #[test]
    fn disabled_policy_is_the_static_schedule() {
        let costs = [3.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let s = plan_epochs(&costs, 4, &RankBudget::default(), StealPolicy::Disabled);
        assert_eq!(s.epochs.len(), 1);
        assert_eq!(s.planned.stolen_jobs, 0);
        assert_eq!(s.planned.est_idle_cost_recovered(), 0.0);
        for (g, grp) in s.epochs[0].groups.iter().enumerate() {
            assert_eq!(grp.jobs, s.static_plan.groups[g].jobs);
        }
    }

    #[test]
    fn straggler_batch_steals_and_recovers_idle_time() {
        // 1 large (3x) + 18 small jobs on 6 ranks: LPT leaves three
        // groups with a 4-cost queue against a 3-cost horizon, so three
        // smalls defer to epoch 1 and run on re-dealt 2-rank groups.
        let mut costs = vec![3.0];
        costs.extend(std::iter::repeat_n(1.0, 18));
        let s = plan_epochs(&costs, 6, &RankBudget::default(), StealPolicy::default());
        assert_eq!(s.epochs.len(), 2);
        assert_eq!(s.planned.stolen_jobs, 3);
        assert!(s.planned.stolen_ranks >= 3);
        // Epoch 0 commits the large job plus 3-cost small queues (walls
        // all 3); epoch 1 spreads the 3 deferred smalls over 2-rank
        // groups (walls 0.5) — the estimated makespan drops from 4 to
        // 3.5, recovering idle time and flattening the worst rank.
        assert!(s.planned.est_idle_cost_recovered() > 0.0);
        assert!(s.planned.est_max_rank_idle_epochs < s.planned.est_max_rank_idle_static);
        // Every job runs exactly once, in the epoch the plan records.
        for j in 0..costs.len() {
            let runs: usize = s
                .epochs
                .iter()
                .map(|e| e.groups.iter().filter(|g| g.jobs.contains(&j)).count())
                .sum();
            assert_eq!(runs, 1, "job {j} scheduled {runs} times");
            assert!(s.epochs[s.job_epoch[j]].group_of_job(j).is_some());
        }
        // Stolen jobs all run in epoch 1.
        for j in 0..costs.len() {
            if s.job_stolen_ranks[j] > 0 {
                assert_eq!(s.job_epoch[j], 1);
            }
        }
    }

    #[test]
    fn seven_equal_jobs_on_six_ranks_steal_the_odd_job() {
        // The minimal integer-granularity straggler: LPT gives one group
        // two jobs; the second defers and runs on the whole world.
        let s = plan_epochs(&[1.0; 7], 6, &RankBudget::default(), StealPolicy::default());
        assert_eq!(s.epochs.len(), 2);
        assert_eq!(s.epochs[1].groups.len(), 1);
        assert_eq!(s.epochs[1].groups[0].ranks, 0..6);
        assert_eq!(s.planned.stolen_jobs, 1);
        assert_eq!(s.planned.stolen_ranks, 5);
        assert!(s.planned.est_idle_cost_recovered() > 0.0);
    }

    #[test]
    fn zero_cost_jobs_do_not_break_the_planner() {
        // Regression: LPT piles every zero-cost job onto the first
        // zero-load group, leaving later groups empty; the steal-horizon
        // scan must skip them instead of indexing an empty queue. (A zero
        // cost is real — any matrix with all-empty block columns.)
        for policy in [StealPolicy::EpochRebalance, StealPolicy::Disabled] {
            let s = plan_epochs(&[1.0, 0.0, 0.0], 3, &RankBudget::default(), policy);
            let scheduled: usize = s
                .epochs
                .iter()
                .flat_map(|e| e.groups.iter())
                .map(|g| g.jobs.len())
                .sum();
            assert_eq!(scheduled, 3, "every job scheduled exactly once");
            for j in 0..3 {
                assert!(s.epochs[s.job_epoch[j]].group_of_job(j).is_some());
            }
        }
        // All-zero batches collapse to a single epoch.
        let s = plan_epochs(&[0.0; 4], 2, &RankBudget::default(), StealPolicy::default());
        assert_eq!(s.epochs.len(), 1);
    }

    #[test]
    fn epoch_planner_terminates_on_adversarial_costs() {
        // Geometric cost spread: every epoch defers something, but the
        // planner is bounded by the job count.
        let costs: Vec<f64> = (0..20).map(|i| 1.5f64.powi(i)).collect();
        let s = plan_epochs(&costs, 3, &RankBudget::default(), StealPolicy::default());
        assert!(s.epochs.len() <= costs.len());
        let scheduled: usize = s
            .epochs
            .iter()
            .flat_map(|e| e.groups.iter())
            .map(|g| g.jobs.len())
            .sum();
        assert_eq!(scheduled, costs.len());
    }

    #[test]
    fn telemetry_roundtrip() {
        let report = EngineReport {
            n_submatrices: 7,
            max_dim: 12,
            avg_dim: 9.5,
            total_cost: 1234.0,
            transfers: TransferStats {
                unique_bytes: 100,
                naive_bytes: 300,
                unique_blocks: 10,
                total_references: 30,
            },
            precision: Precision::Fp32Refined,
            gather_value_bytes: 2048,
            scatter_value_bytes: 512,
            mu: -0.25,
            bisect_iterations: 3,
            plan_cached: true,
            symbolic_seconds: 0.5,
            gather_seconds: 0.1,
            solve_seconds: 0.2,
            scatter_seconds: 0.3,
            backend: SolveBackend::SparseCsr,
            sparse_filtered_nnz: 42,
            sparse_flops: 9000,
        };
        let enc = encode_telemetry(&report, 1.5, 4, 4096, 17, 2, 3, 1, false, None);
        // Self-describing layout: version + entry-count header, then
        // (field_id, value) pairs — 29 base fields.
        assert_eq!(enc[0], wire::TELEMETRY_SCHEMA_VERSION as f64);
        assert_eq!(enc.len(), 2 + 2 * 29, "base record is 29 entries");
        let d = decode_telemetry(&enc);
        assert_eq!(d.report.n_submatrices, 7);
        assert_eq!(d.report.transfers, report.transfers);
        assert_eq!(d.report.mu, report.mu);
        assert!(d.report.plan_cached);
        assert_eq!(d.report.precision, Precision::Fp32Refined);
        assert_eq!(d.report.gather_value_bytes, 2048);
        assert_eq!(d.report.scatter_value_bytes, 512);
        assert_eq!(d.report.backend, SolveBackend::SparseCsr);
        assert_eq!(d.report.sparse_filtered_nnz, 42);
        assert_eq!(d.report.sparse_flops, 9000);
        assert_eq!(
            (d.seconds, d.group_size, d.comm_bytes, d.comm_msgs),
            (1.5, 4, 4096, 17)
        );
        assert_eq!((d.epoch, d.stolen_ranks), (2, 3));
        assert_eq!((d.attempts, d.quarantined), (1, false));
        assert!(d.scf.is_none());

        // The SCF extension rides the same record, distinguished by
        // length, and roundtrips exactly.
        let scf_in = ScfTelemetry {
            iterations: 3,
            converged: true,
            final_energy: -4.25,
            final_electrons: 16.0,
            gather_value_bytes: vec![100, 200, 300],
            scatter_value_bytes: vec![10, 20, 30],
        };
        let enc = encode_telemetry(&report, 1.5, 4, 4096, 17, 2, 3, 2, false, Some(&scf_in));
        assert_eq!(enc.len(), 2 + 2 * (33 + 2 * 3));
        let d = decode_telemetry(&enc);
        assert_eq!(d.attempts, 2);
        assert_eq!(d.scf, Some(scf_in));
    }

    #[test]
    #[should_panic(expected = "schema version mismatch")]
    fn telemetry_decode_rejects_foreign_schema_version() {
        let report = EngineReport {
            n_submatrices: 1,
            max_dim: 2,
            avg_dim: 2.0,
            total_cost: 16.0,
            transfers: TransferStats::default(),
            precision: Precision::Fp64,
            gather_value_bytes: 0,
            scatter_value_bytes: 0,
            mu: 0.0,
            bisect_iterations: 0,
            plan_cached: false,
            symbolic_seconds: 0.0,
            gather_seconds: 0.0,
            solve_seconds: 0.0,
            scatter_seconds: 0.0,
            backend: SolveBackend::Dense,
            sparse_filtered_nnz: 0,
            sparse_flops: 0,
        };
        let mut enc = encode_telemetry(&report, 0.0, 1, 0, 0, 0, 0, 1, false, None);
        enc[0] += 1.0; // a future schema version
        let _ = decode_telemetry(&enc);
    }

    #[test]
    fn steal_horizon_is_max_leading_cost_per_ranks() {
        // The documented horizon formula, asserted directly: horizon =
        // max over non-empty groups of (leading-job cost / group ranks).
        let costs = [3.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let p = partition(&costs, 6, &RankBudget::default());
        let expected = p
            .groups
            .iter()
            .filter(|g| !g.jobs.is_empty())
            .map(|g| costs[g.jobs[0]] / g.ranks.len() as f64)
            .fold(0.0f64, f64::max);
        assert_eq!(steal_horizon(&p), expected);

        // And the planner honors it: every epoch-0 group's committed
        // queue fits within the horizon (the leading job is exempt — it
        // *defines* the commitment), and every deferred job would have
        // overflowed it.
        let s = plan_epochs(&costs, 6, &RankBudget::default(), StealPolicy::default());
        let h = steal_horizon(&s.static_plan);
        for grp in &s.epochs[0].groups {
            let mut cum = 0.0;
            for (pos, &j) in grp.jobs.iter().enumerate() {
                cum += costs[j];
                if pos > 0 {
                    assert!(
                        cum / grp.ranks.len() as f64 <= h * (1.0 + 1e-9),
                        "group committed past the steal horizon"
                    );
                }
            }
        }
        for j in 0..costs.len() {
            if s.job_epoch[j] > 0 {
                let home = &s.static_plan.groups[s.home_group[j]];
                let committed: f64 = home
                    .jobs
                    .iter()
                    .filter(|&&k| s.job_epoch[k] == 0)
                    .map(|&k| costs[k])
                    .sum();
                assert!(
                    (committed + costs[j]) / home.ranks.len() as f64 > h,
                    "job {j} was deferred although it fit the horizon"
                );
            }
        }

        // Empty batch: no commitment.
        assert_eq!(
            steal_horizon(&partition(&[], 4, &RankBudget::default())),
            0.0
        );
    }

    #[test]
    fn degenerate_horizon_commits_in_a_single_epoch() {
        // An all-zero-cost batch makes `steal_horizon` return 0.0 — a
        // horizon with no ordering information. The planner must treat it
        // as unbounded (commit everything, one epoch) instead of letting
        // the greedy fill defer on it; same rule under the recovery
        // planner's fill.
        for world in [1usize, 2, 3, 6] {
            let s = plan_epochs(
                &[0.0; 9],
                world,
                &RankBudget::default(),
                StealPolicy::default(),
            );
            assert_eq!(s.epochs.len(), 1, "world {world}: zero-cost batch split");
            let scheduled: usize = s.epochs[0].groups.iter().map(|g| g.jobs.len()).sum();
            assert_eq!(scheduled, 9);

            let r = plan_recovery(
                &[0.0; 9],
                world,
                &RankBudget::default(),
                &FaultPlan::new(),
                3,
            );
            assert_eq!(r.epochs.len(), 1, "world {world}: recovery split");
            assert!(r.job_attempts.iter().all(|&a| a == 1));
        }
    }

    #[test]
    fn partition_is_total_on_non_finite_costs() {
        // `partition` is a public entry point: a NaN estimate must yield a
        // deterministic (if meaningless) schedule, never a comparator
        // panic. Admission (`try_run_batch`) rejects such jobs up front.
        let costs = [f64::NAN, 2.0, f64::INFINITY, 0.0];
        let p = partition(&costs, 3, &RankBudget::default());
        let mut seen: Vec<usize> = p.groups.iter().flat_map(|g| g.jobs.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3], "every job placed exactly once");
        let p2 = partition(&costs, 3, &RankBudget::default());
        let jobs: Vec<_> = p.groups.iter().map(|g| g.jobs.clone()).collect();
        let jobs2: Vec<_> = p2.groups.iter().map(|g| g.jobs.clone()).collect();
        assert_eq!(jobs, jobs2, "NaN placement is deterministic");
    }

    #[test]
    fn non_finite_estimates_are_rejected_at_admission() {
        let dims = sm_dbcsr::BlockedDims::uniform(2, 2);
        let dense = sm_linalg::Matrix::from_fn(4, 4, |i, j| if i == j { 1.0 } else { 0.0 });
        let job = BatchJob::Matrix(MatrixJob {
            name: "nan-cost".to_string(),
            matrix: DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0),
            mu0: 0.0,
            numeric: sm_core::engine::NumericOptions::default(),
            output: crate::jobs::JobOutput::Density,
        });
        let err = check_estimates(std::slice::from_ref(&job), &[f64::NAN]).unwrap_err();
        match &err {
            SchedError::BadEstimate { name, cost } => {
                assert_eq!(name, "nan-cost");
                assert!(cost.is_nan());
            }
            other => panic!("expected BadEstimate, got {other:?}"),
        }
        assert!(err.to_string().contains("non-finite cost estimate"));
        assert!(check_estimates(std::slice::from_ref(&job), &[1.0]).is_ok());
    }

    #[test]
    fn precision_codes_roundtrip() {
        for p in Precision::all() {
            assert_eq!(precision_from_code(precision_code(p)), p);
        }
    }

    #[test]
    fn backend_codes_roundtrip() {
        for b in [SolveBackend::Dense, SolveBackend::SparseCsr] {
            assert_eq!(backend_from_code(backend_code(b)), b);
        }
    }

    #[test]
    fn sparse_backend_lowers_iterative_cost_estimates() {
        // A low-fill pattern under Auto policy resolves to the sparse-CSR
        // backend for iterative sign methods, and the perfmodel must
        // price that in — otherwise LPT packing would misplace sparse
        // jobs. Diagonalization ignores the backend, so its estimate
        // must not move (the schedule stays a pure function of what the
        // engine will actually run).
        let dims = sm_dbcsr::BlockedDims::uniform(12, 4);
        let diag = sm_linalg::Matrix::from_fn(48, 48, |i, j| if i == j { 2.0 } else { 0.0 });
        let matrix = DbcsrMatrix::from_dense(&diag, dims, 0, 1, 0.0);
        let dense = estimate_pattern_cost(&matrix);
        let mut numeric = NumericOptions {
            solve: sm_core::solver::SolveOptions {
                method: SignMethod::NewtonSchulz,
                ..Default::default()
            },
            ..Default::default()
        };
        let sparse = estimate_pattern_cost_for(&matrix, &numeric);
        assert!(
            sparse < dense,
            "low-fill iterative estimate should shrink: {sparse} vs {dense}"
        );
        numeric.solve.method = SignMethod::Diagonalization;
        assert_eq!(estimate_pattern_cost_for(&matrix, &numeric), dense);
        // Forcing the dense backend restores the dense estimate even for
        // iterative methods.
        numeric.solve.method = SignMethod::NewtonSchulz;
        numeric.backend = sm_core::engine::BackendPolicy::Dense;
        assert_eq!(estimate_pattern_cost_for(&matrix, &numeric), dense);
    }

    #[test]
    fn recovery_plan_without_faults_resolves_every_job_first_try() {
        let costs = [5.0, 3.0, 2.0, 2.0];
        let r = plan_recovery(&costs, 4, &RankBudget::default(), &FaultPlan::new(), 3);
        assert!(r.quarantined.iter().all(|&q| !q));
        assert!(r.job_attempts.iter().all(|&a| a == 1));
        assert_eq!(r.stats.rank_failures, 0);
        assert_eq!(r.stats.poisoned_attempts, 0);
        assert_eq!(r.stats.retries, 0);
        assert_eq!(r.stats.final_world_size, 4);
        // Every epoch keeps the full world and every job has a root.
        for ep in &r.epochs {
            assert_eq!(ep.survivors, vec![0, 1, 2, 3]);
            assert!(ep.newly_failed.is_empty());
        }
        for j in 0..costs.len() {
            let _ = r.root_of_job(j);
        }
    }

    #[test]
    fn recovery_plan_shrinks_world_at_the_failure_epoch() {
        let costs = [4.0; 6];
        let plan = FaultPlan::new().fail_rank(2, 1);
        let r = plan_recovery(&costs, 4, &RankBudget::default(), &plan, 3);
        assert_eq!(r.stats.rank_failures, 1);
        assert_eq!(r.stats.final_world_size, 3);
        // The world shrinks exactly at the committed epoch and stays
        // strictly smaller afterwards — never to grow back.
        for (e, ep) in r.epochs.iter().enumerate() {
            if e < 1 {
                assert_eq!(ep.survivors, vec![0, 1, 2, 3]);
            } else {
                assert_eq!(ep.survivors, vec![0, 1, 3]);
                assert!(!ep.groups.iter().any(|g| g.ranks.contains(&2)));
            }
        }
        assert_eq!(r.epochs[1].newly_failed, vec![2]);
        // Every job still lands on a surviving root.
        for j in 0..costs.len() {
            assert!(r.root_of_job(j) != 2 || r.job_epoch[j] < 1);
        }
    }

    #[test]
    fn recovery_plan_retries_with_backoff_and_quarantines() {
        let costs = [2.0, 2.0];
        // Job 1 poisoned on attempts 1 and 2 with budget 3: two retries
        // (backing off 1 then 2 epochs), third attempt clean.
        let plan = FaultPlan::new().poison_job(1, 1).poison_job(1, 2);
        let r = plan_recovery(&costs, 2, &RankBudget::default(), &plan, 3);
        assert_eq!(r.job_attempts[1], 3);
        assert!(!r.quarantined[1]);
        assert_eq!(r.stats.poisoned_attempts, 2);
        assert_eq!(r.stats.retries, 2);
        assert_eq!(r.stats.quarantined_jobs, 0);
        // Attempt 1 at epoch 0, retry at 0+2^0=1, then at 1+2^1=3 with a
        // pure wait epoch in between.
        assert_eq!(r.job_epoch[1], 3);
        assert!(r.epochs[2].groups.iter().all(|g| g.jobs.is_empty()));

        // Budget 2 quarantines instead of running the third attempt.
        let r = plan_recovery(&costs, 2, &RankBudget::default(), &plan, 2);
        assert!(r.quarantined[1]);
        assert_eq!(r.job_attempts[1], 2);
        assert_eq!(r.stats.quarantined_jobs, 1);
        assert_eq!(r.stats.retries, 1);
        assert!(!r.quarantined[0]);
    }

    #[test]
    fn recovery_plan_is_deterministic_per_seed() {
        let costs = [5.0, 1.0, 3.0, 2.0, 4.0];
        let plan = FaultPlan::random(42, 4, costs.len());
        let a = plan_recovery(&costs, 4, &RankBudget::default(), &plan, 3);
        let b = plan_recovery(&costs, 4, &RankBudget::default(), &plan, 3);
        assert_eq!(a.job_epoch, b.job_epoch);
        assert_eq!(a.job_attempts, b.job_attempts);
        assert_eq!(a.quarantined, b.quarantined);
        assert_eq!(a.stats, b.stats);
    }
}
