//! The resident streaming SCF service: a long-lived daemon loop over a
//! continuous stream of [`ScfJobSpec`]s.
//!
//! [`crate::scf_service::ScfService`] is batch-shaped: one `run` call per
//! workload, no state between calls. A service that faces a stream of
//! users needs the complementary shape — a process that stays up,
//! **admits** jobs as they arrive, and periodically closes an **admission
//! window** into one scheduled batch. [`StreamingScfService`] is that
//! layer:
//!
//! * **Admission queue with priorities and bounded backpressure.**
//!   [`StreamingScfService::submit`] enqueues a spec at a [`Priority`];
//!   when the queue is at [`ServiceConfig::queue_capacity`] the submission
//!   is refused with [`ServiceError::Backpressure`] — the caller sheds
//!   load instead of the daemon growing without bound. Non-finite cost
//!   estimates are rejected at the door ([`ServiceError::Rejected`] over
//!   [`SchedError::BadEstimate`]) so one degenerate spec cannot fail the
//!   whole window at close.
//! * **Admission-window determinism.** [`StreamingScfService::close_window`]
//!   drains the queue in the canonical order (priority descending,
//!   submission sequence ascending within a priority) and runs the batch
//!   through the epoch-stealing [`Scheduler`]. Everything downstream —
//!   LPT partition, steal horizon, epoch fill — is already a pure
//!   function of the admitted set and its perfmodel estimates
//!   (ARCHITECTURE.md invariant 3), so the window's results are
//!   bitwise-identical to a serial [`sm_chem::ScfDriver`] loop over the
//!   same admitted set in the same order, at any world size and steal
//!   schedule. *When* a job was submitted never affects its numbers;
//!   only *which window* admitted it does.
//! * **A daemon loop.** [`StreamingScfService::serve`] parks on a request
//!   channel and services [`ServiceRequest`]s until the channel closes or
//!   a [`ServiceRequest::Shutdown`] arrives — the resident shape the
//!   `smserved` binary wraps a line protocol around. Plans persist across
//!   restarts through the engine's manifest spill
//!   ([`ServiceRequest::ExportPlans`] / [`ServiceRequest::ImportPlans`];
//!   see `SubmatrixEngine::export_plans`), so a restarted daemon replans
//!   nothing for patterns it has already seen.
//!
//! Each closed window narrates one `service.window` trace event (window
//! index, jobs admitted, queue depth, backpressure rejects) under a
//! `batch:<label>.w<N>` root span; `smdoctor serve-report` reconstructs
//! the daemon's admission history from exactly this narration.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

use sm_core::engine::SubmatrixEngine;
use sm_trace::SpanKind;

use crate::jobs::{BatchJob, ScfJobSpec};
use crate::sched::{
    estimate_batch_job_cost, RankBudget, SchedError, Scheduler, SchedulerOutcome, StealPolicy,
};

/// Admission priority of a streamed job. Higher priorities drain first
/// when a window closes; within a priority, submission order is kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Background work (bulk resubmission, warming).
    Low,
    /// The default service class.
    #[default]
    Normal,
    /// Latency-sensitive work; drains ahead of everything else.
    High,
}

impl Priority {
    /// Stable label used in trace narration and the `smserved` protocol.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    /// Parse the [`Priority::label`] form.
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "low" => Some(Priority::Low),
            "normal" => Some(Priority::Normal),
            "high" => Some(Priority::High),
            _ => None,
        }
    }
}

/// Typed admission failure of [`StreamingScfService::submit`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The admission queue is full; the caller must shed or retry after
    /// the next window closes.
    Backpressure {
        /// The configured queue bound that was hit.
        capacity: usize,
    },
    /// The spec failed admission validation (today: a non-finite cost
    /// estimate, [`SchedError::BadEstimate`]).
    Rejected(SchedError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Backpressure { capacity } => write!(
                f,
                "admission queue full ({capacity} jobs queued); close a window or retry"
            ),
            ServiceError::Rejected(e) => write!(f, "admission rejected: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Static configuration of a [`StreamingScfService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Simulated world size every window is scheduled at.
    pub world_size: usize,
    /// Bound on the admission queue; submissions beyond it get
    /// [`ServiceError::Backpressure`].
    pub queue_capacity: usize,
    /// Rank budget handed to the scheduler.
    pub budget: RankBudget,
    /// Steal policy for every window.
    pub policy: StealPolicy,
    /// Root trace label; window `N` runs under `batch:<label>.w<N>`.
    pub trace_label: String,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            world_size: 4,
            queue_capacity: 64,
            budget: RankBudget::default(),
            policy: StealPolicy::default(),
            trace_label: "serve".to_string(),
        }
    }
}

struct Pending {
    spec: ScfJobSpec,
    priority: Priority,
    seq: u64,
}

/// Lifetime counters of one service instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Windows closed so far.
    pub windows: usize,
    /// Jobs run to completion across all windows.
    pub jobs_run: usize,
    /// Submissions refused by backpressure.
    pub backpressure_rejects: u64,
    /// Submissions refused by admission validation.
    pub admission_rejects: u64,
    /// Deepest the admission queue has been.
    pub queue_high_water: usize,
}

/// The result of one closed admission window.
pub struct WindowOutcome {
    /// Zero-based window index within this service's lifetime.
    pub window: usize,
    /// Names of the admitted jobs in the canonical run order (priority
    /// descending, submission sequence ascending) — the order
    /// `outcome.results` is in.
    pub admitted: Vec<String>,
    /// The scheduled batch's outcome.
    pub outcome: SchedulerOutcome,
}

/// Requests the daemon loop ([`StreamingScfService::serve`]) understands.
pub enum ServiceRequest {
    /// Enqueue a spec at a priority (boxed: a spec carries its whole
    /// matrix, far larger than any other request).
    Submit(Box<ScfJobSpec>, Priority),
    /// Close the admission window and run everything admitted so far.
    CloseWindow,
    /// Spill the engine's plan cache to a manifest file.
    ExportPlans(PathBuf),
    /// Restore plans from a manifest file.
    ImportPlans(PathBuf),
    /// Report lifetime counters.
    Stats,
    /// Stop the loop (it also stops when the request channel closes).
    Shutdown,
}

/// Events the daemon loop emits, one or more per request.
pub enum ServiceEvent {
    /// A submission was admitted to the queue.
    Admitted {
        /// Monotone submission sequence number.
        seq: u64,
        /// The spec's name.
        name: String,
        /// Queue depth after admission.
        queue_depth: usize,
    },
    /// A submission was refused.
    Refused {
        /// The spec's name.
        name: String,
        /// Why it was refused.
        error: ServiceError,
    },
    /// A window closed and ran.
    Window(Box<WindowOutcome>),
    /// A window closed but the scheduler failed the batch.
    WindowFailed(SchedError),
    /// Plans were exported: `(path, count)`.
    PlansExported(PathBuf, usize),
    /// Plans were imported: `(path, count)`.
    PlansImported(PathBuf, usize),
    /// A plan export/import failed (rendered engine error).
    PlanIoFailed(String),
    /// Lifetime counters, answering [`ServiceRequest::Stats`].
    Stats(ServiceStats),
    /// The loop stopped; final counters.
    Stopped(ServiceStats),
}

/// The resident streaming service. See the module docs for the admission
/// and determinism contract.
pub struct StreamingScfService {
    engine: Arc<SubmatrixEngine>,
    config: ServiceConfig,
    queue: VecDeque<Pending>,
    next_seq: u64,
    stats: ServiceStats,
}

impl StreamingScfService {
    /// Build a service over an existing engine (sharing its plan cache
    /// with anything else running on that engine).
    pub fn new(engine: Arc<SubmatrixEngine>, config: ServiceConfig) -> Self {
        assert!(config.world_size >= 1, "need at least one rank");
        assert!(
            config.queue_capacity >= 1,
            "queue capacity must admit something"
        );
        StreamingScfService {
            engine,
            config,
            queue: VecDeque::new(),
            next_seq: 0,
            stats: ServiceStats::default(),
        }
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<SubmatrixEngine> {
        &self.engine
    }

    /// The static configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Jobs currently queued for the next window.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Admit one spec at `priority`, returning its submission sequence
    /// number. Fails with [`ServiceError::Backpressure`] when the queue
    /// is full and [`ServiceError::Rejected`] when the spec's cost
    /// estimate is non-finite (the same check `try_run_batch` applies,
    /// pulled forward so one bad spec cannot fail a whole window).
    pub fn submit(&mut self, spec: ScfJobSpec, priority: Priority) -> Result<u64, ServiceError> {
        let cost = estimate_batch_job_cost(&BatchJob::Scf(spec.clone()));
        self.admit(spec, priority, cost)
    }

    /// Admission with the cost already estimated (the testable seam).
    fn admit(
        &mut self,
        spec: ScfJobSpec,
        priority: Priority,
        cost: f64,
    ) -> Result<u64, ServiceError> {
        if self.queue.len() >= self.config.queue_capacity {
            self.stats.backpressure_rejects += 1;
            return Err(ServiceError::Backpressure {
                capacity: self.config.queue_capacity,
            });
        }
        if !cost.is_finite() {
            self.stats.admission_rejects += 1;
            return Err(ServiceError::Rejected(SchedError::BadEstimate {
                name: spec.name.clone(),
                cost,
            }));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push_back(Pending {
            spec,
            priority,
            seq,
        });
        self.stats.queue_high_water = self.stats.queue_high_water.max(self.queue.len());
        Ok(seq)
    }

    /// The canonical run order of the currently queued jobs: priority
    /// descending, submission sequence ascending within a priority. This
    /// is the order [`close_window`](Self::close_window) admits (and the
    /// order its results come back in) — a pure function of the admitted
    /// set, independent of arrival timing.
    pub fn pending_order(&self) -> Vec<String> {
        let mut order: Vec<&Pending> = self.queue.iter().collect();
        order.sort_by_key(|p| (std::cmp::Reverse(p.priority), p.seq));
        order.iter().map(|p| p.spec.name.clone()).collect()
    }

    /// Close the admission window: drain the queue in canonical order and
    /// run the admitted set as one scheduled batch. An empty queue closes
    /// an empty window (no epoch runs). On scheduler failure the admitted
    /// jobs are **not** re-queued — the error carries the whole window.
    pub fn close_window(&mut self) -> Result<WindowOutcome, SchedError> {
        let window = self.stats.windows;
        self.stats.windows += 1;
        let mut admitted: Vec<Pending> = self.queue.drain(..).collect();
        admitted.sort_by_key(|p| (std::cmp::Reverse(p.priority), p.seq));
        let names: Vec<String> = admitted.iter().map(|p| p.spec.name.clone()).collect();
        let label = format!("{}.w{}", self.config.trace_label, window);

        let t0 = Instant::now();
        let sched = Scheduler::new(Arc::clone(&self.engine), self.config.budget)
            .with_policy(self.config.policy)
            .with_trace_label(&label);
        let jobs: Vec<BatchJob> = admitted
            .into_iter()
            .map(|p| BatchJob::Scf(p.spec))
            .collect();
        let n_jobs = jobs.len();
        let outcome = sched.try_run_batch(self.config.world_size, jobs)?;
        self.stats.jobs_run += n_jobs;

        if sm_trace::enabled() {
            // One narration event per window, under the same batch root
            // the scheduler traced the epochs beneath; `smdoctor
            // serve-report` keys on exactly this event.
            let _root = sm_trace::span(SpanKind::Batch, &label);
            sm_trace::emit(
                "service.window",
                0.0,
                t0.elapsed().as_secs_f64(),
                &[
                    ("window", window as f64),
                    ("admitted", n_jobs as f64),
                    ("queue_rejects", self.stats.backpressure_rejects as f64),
                ],
            );
        }
        Ok(WindowOutcome {
            window,
            admitted: names,
            outcome,
        })
    }

    /// The daemon loop: service requests until the channel closes or a
    /// [`ServiceRequest::Shutdown`] arrives, emitting [`ServiceEvent`]s.
    /// Event-send failures (a departed listener) also stop the loop — a
    /// daemon nobody is listening to has no reason to keep running.
    pub fn serve(mut self, requests: Receiver<ServiceRequest>, events: Sender<ServiceEvent>) {
        while let Ok(req) = requests.recv() {
            let event = match req {
                ServiceRequest::Submit(spec, priority) => {
                    let name = spec.name.clone();
                    match self.submit(*spec, priority) {
                        Ok(seq) => ServiceEvent::Admitted {
                            seq,
                            name,
                            queue_depth: self.queue_depth(),
                        },
                        Err(error) => ServiceEvent::Refused { name, error },
                    }
                }
                ServiceRequest::CloseWindow => match self.close_window() {
                    Ok(outcome) => ServiceEvent::Window(Box::new(outcome)),
                    Err(e) => ServiceEvent::WindowFailed(e),
                },
                ServiceRequest::ExportPlans(path) => match self.engine.export_plans(&path) {
                    Ok(n) => ServiceEvent::PlansExported(path, n),
                    Err(e) => ServiceEvent::PlanIoFailed(e.to_string()),
                },
                ServiceRequest::ImportPlans(path) => match self.engine.import_plans(&path) {
                    Ok(n) => ServiceEvent::PlansImported(path, n),
                    Err(e) => ServiceEvent::PlanIoFailed(e.to_string()),
                },
                ServiceRequest::Stats => ServiceEvent::Stats(self.stats()),
                ServiceRequest::Shutdown => break,
            };
            if events.send(event).is_err() {
                return; // listener gone; stop without the final event
            }
        }
        let _ = events.send(ServiceEvent::Stopped(self.stats()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scf_service::serial_scf_loop;
    use sm_core::engine::EngineOptions;
    use sm_dbcsr::{BlockedDims, DbcsrMatrix};
    use sm_linalg::Matrix;

    fn banded(nb: usize, bs: usize, seed: u64) -> DbcsrMatrix {
        let n = nb * bs;
        let mut dense = Matrix::from_fn(n, n, |i, j| {
            let bi = (i / bs) as isize;
            let bj = (j / bs) as isize;
            if (bi - bj).abs() > 1 {
                0.0
            } else if i == j {
                (if i % 2 == 0 { 1.0 } else { -1.0 }) + ((seed % 13) as f64) * 0.011
            } else {
                0.05 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        dense.symmetrize();
        DbcsrMatrix::from_dense(&dense, BlockedDims::uniform(nb, bs), 0, 1, 0.0)
    }

    fn gc_spec(name: &str, nb: usize, seed: u64) -> ScfJobSpec {
        let kt0 = banded(nb, 2, seed);
        let n_electrons = kt0.n() as f64;
        let mut spec = ScfJobSpec::new(name, kt0, 0.0, n_electrons);
        spec.scf.max_iter = 6;
        spec.scf.tol = 1e-9;
        spec.scf.ensemble = sm_chem::ScfEnsemble::GrandCanonical;
        spec
    }

    fn fresh_service(capacity: usize) -> StreamingScfService {
        StreamingScfService::new(
            Arc::new(SubmatrixEngine::new(EngineOptions {
                parallel: false,
                ..EngineOptions::default()
            })),
            ServiceConfig {
                queue_capacity: capacity,
                trace_label: "svc-test".to_string(),
                ..ServiceConfig::default()
            },
        )
    }

    #[test]
    fn backpressure_bounds_the_admission_queue() {
        let mut svc = fresh_service(2);
        svc.submit(gc_spec("a", 4, 1), Priority::Normal).unwrap();
        svc.submit(gc_spec("b", 4, 2), Priority::Normal).unwrap();
        let err = svc.submit(gc_spec("c", 4, 3), Priority::High).unwrap_err();
        assert_eq!(err, ServiceError::Backpressure { capacity: 2 });
        assert_eq!(svc.queue_depth(), 2, "refused submission must not enqueue");
        assert_eq!(svc.stats().backpressure_rejects, 1);
        // Draining the window frees the queue.
        let w = svc.close_window().expect("window");
        assert_eq!(w.admitted, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(svc.queue_depth(), 0);
        svc.submit(gc_spec("c", 4, 3), Priority::High).unwrap();
        assert_eq!(svc.queue_depth(), 1);
    }

    #[test]
    fn canonical_order_is_priority_then_submission_seq() {
        let mut svc = fresh_service(8);
        svc.submit(gc_spec("n1", 4, 1), Priority::Normal).unwrap();
        svc.submit(gc_spec("l1", 4, 2), Priority::Low).unwrap();
        svc.submit(gc_spec("h1", 4, 3), Priority::High).unwrap();
        svc.submit(gc_spec("n2", 4, 4), Priority::Normal).unwrap();
        svc.submit(gc_spec("h2", 4, 5), Priority::High).unwrap();
        let want = ["h1", "h2", "n1", "n2", "l1"];
        assert_eq!(svc.pending_order(), want);
        let w = svc.close_window().expect("window");
        assert_eq!(w.admitted, want);
        // Results come back in the same canonical order.
        let names: Vec<&str> = w.outcome.results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, want);
    }

    #[test]
    fn streamed_window_matches_serial_loop_bitwise() {
        let mut svc = fresh_service(16);
        svc.submit(gc_spec("s1", 5, 1), Priority::Low).unwrap();
        svc.submit(gc_spec("s2", 4, 2), Priority::High).unwrap();
        svc.submit(gc_spec("s3", 6, 3), Priority::Normal).unwrap();
        let order = svc.pending_order();
        let w = svc.close_window().expect("window");
        assert_eq!(w.admitted, order);

        // Serial reference over the same admitted set in the same order.
        let serial_engine = Arc::new(SubmatrixEngine::new(EngineOptions {
            parallel: false,
            ..EngineOptions::default()
        }));
        let specs: Vec<ScfJobSpec> = w
            .admitted
            .iter()
            .map(|name| {
                let (nb, seed) = match name.as_str() {
                    "s1" => (5, 1),
                    "s2" => (4, 2),
                    "s3" => (6, 3),
                    _ => unreachable!(),
                };
                gc_spec(name, nb, seed)
            })
            .collect();
        let serial = serial_scf_loop(&serial_engine, &specs);
        for (r, s) in w.outcome.results.iter().zip(&serial) {
            let d = r.result.to_dense(&sm_comsim::SerialComm::new());
            let ds = s.density.to_dense(&sm_comsim::SerialComm::new());
            assert!(
                d.allclose(&ds, 0.0),
                "{}: streamed density diverged",
                r.name
            );
        }
    }

    #[test]
    fn admission_rejects_non_finite_estimates() {
        // A real spec cannot carry a NaN estimate from this construction,
        // so drive the admission seam directly with a forged cost — the
        // same check `try_run_batch` applies at window close.
        let mut svc = fresh_service(4);
        match svc.admit(gc_spec("nan", 4, 1), Priority::Normal, f64::NAN) {
            Err(ServiceError::Rejected(SchedError::BadEstimate { name, cost })) => {
                assert_eq!(name, "nan");
                assert!(cost.is_nan());
            }
            other => panic!(
                "expected BadEstimate rejection, got {:?}",
                other.map(|_| ())
            ),
        }
        assert_eq!(svc.stats().admission_rejects, 1);
        assert_eq!(svc.queue_depth(), 0);
        // The happy path still admits.
        assert!(svc.submit(gc_spec("ok", 4, 1), Priority::Normal).is_ok());
        assert_eq!(svc.queue_depth(), 1);
    }

    #[test]
    fn daemon_loop_services_requests_until_shutdown() {
        let svc = fresh_service(8);
        let engine = Arc::clone(svc.engine());
        let (req_tx, req_rx) = std::sync::mpsc::channel();
        let (evt_tx, evt_rx) = std::sync::mpsc::channel();
        let daemon = std::thread::spawn(move || svc.serve(req_rx, evt_tx));

        req_tx
            .send(ServiceRequest::Submit(
                Box::new(gc_spec("d1", 4, 1)),
                Priority::Normal,
            ))
            .unwrap();
        match evt_rx.recv().unwrap() {
            ServiceEvent::Admitted {
                seq,
                name,
                queue_depth,
            } => {
                assert_eq!((seq, name.as_str(), queue_depth), (0, "d1", 1));
            }
            _ => panic!("expected Admitted"),
        }
        req_tx.send(ServiceRequest::CloseWindow).unwrap();
        match evt_rx.recv().unwrap() {
            ServiceEvent::Window(w) => {
                assert_eq!(w.window, 0);
                assert_eq!(w.admitted, vec!["d1".to_string()]);
            }
            _ => panic!("expected Window"),
        }
        // Persistence through the daemon: export, then re-import.
        let dir = std::env::temp_dir().join("sm_service_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("daemon.smplans");
        req_tx
            .send(ServiceRequest::ExportPlans(manifest.clone()))
            .unwrap();
        let exported = match evt_rx.recv().unwrap() {
            ServiceEvent::PlansExported(p, n) => {
                assert_eq!(p, manifest);
                assert!(n > 0);
                n
            }
            _ => panic!("expected PlansExported"),
        };
        assert_eq!(engine.cached_plans(), exported);
        req_tx.send(ServiceRequest::Stats).unwrap();
        match evt_rx.recv().unwrap() {
            ServiceEvent::Stats(s) => {
                assert_eq!(s.windows, 1);
                assert_eq!(s.jobs_run, 1);
            }
            _ => panic!("expected Stats"),
        }
        req_tx.send(ServiceRequest::Shutdown).unwrap();
        match evt_rx.recv().unwrap() {
            ServiceEvent::Stopped(s) => assert_eq!(s.windows, 1),
            _ => panic!("expected Stopped"),
        }
        daemon.join().unwrap();
    }
}
