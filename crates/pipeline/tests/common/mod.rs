//! Shared test support for the pipeline integration suites.

#![allow(dead_code)]

/// Run `f` under a wall-clock watchdog: a deadlocked/livelocked schedule
/// fails the test instead of hanging the harness forever.
pub fn with_watchdog<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    use std::sync::mpsc::RecvTimeoutError;
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(std::time::Duration::from_secs(secs)) {
        Ok(v) => {
            handle.join().expect("watchdog worker panicked");
            v
        }
        // A dropped sender means the worker panicked, not hung: join to
        // resurface the real panic instead of mislabeling it a deadlock.
        Err(RecvTimeoutError::Disconnected) => match handle.join() {
            Err(p) => std::panic::resume_unwind(p),
            Ok(()) => unreachable!("worker finished without sending"),
        },
        Err(RecvTimeoutError::Timeout) => {
            panic!("deadlock/livelock: batch did not complete within {secs}s")
        }
    }
}
