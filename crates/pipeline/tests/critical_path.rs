//! Critical-path analyzer acceptance suite (ISSUE 7): the cost-unit
//! critical path of a traced straggler batch is **bit-identical across
//! traced reruns** (it is a pure function of the schedule narration —
//! the two-clock rule), it names the straggler job, the steal schedule
//! shortens it versus the no-stealing baseline, and the scheduler
//! provably never reads `CALIB_perfmodel.json` (schedules and results
//! stay bitwise-identical with a garbage calibration artifact on disk).

use sm_comsim::SerialComm;
use sm_dbcsr::{BlockedDims, DbcsrMatrix};
use sm_linalg::Matrix;
use sm_pipeline::{
    EngineOptions, JobQueue, JobResult, MatrixJob, RankBudget, Scheduler, StealPolicy,
    SubmatrixEngine,
};
use sm_trace::analyze::{critical_path, idle_attribution, CriticalPath};
use sm_trace::TraceSession;

/// Deterministic banded symmetric matrix with a spectral gap at 0 (same
/// construction as the stealing_equivalence suite).
fn banded(nb: usize, bs: usize, half: usize, seed: u64) -> DbcsrMatrix {
    let n = nb * bs;
    let mut dense = Matrix::from_fn(n, n, |i, j| {
        let bi = (i / bs) as isize;
        let bj = (j / bs) as isize;
        if (bi - bj).unsigned_abs() > half {
            0.0
        } else if i == j {
            let base = if i % 2 == 0 { 1.0 } else { -1.0 };
            base + ((seed % 13) as f64) * 0.011
        } else {
            let w = 0.6 + ((i * 29 + j * 13 + seed as usize) % 7) as f64 / 7.0;
            0.05 * w / (1.0 + (i as f64 - j as f64).abs())
        }
    });
    dense.symmetrize();
    DbcsrMatrix::from_dense(&dense, BlockedDims::uniform(nb, bs), 0, 1, 0.0)
}

/// One large job ("large", submission index 0) plus 18 smalls: under LPT
/// on 6 ranks the large job pins the steal horizon and a tail of smalls
/// defers to epoch 1 on re-dealt multi-rank groups.
fn straggler_batch(seed: u64) -> Vec<MatrixJob> {
    let mut jobs = vec![MatrixJob::density("large", banded(10, 2, 1, seed), 0.0)];
    for i in 0..18u64 {
        jobs.push(MatrixJob::density(
            format!("small-{i}"),
            banded(4, 2, 1, seed.wrapping_add(i)),
            0.0,
        ));
    }
    jobs
}

fn fresh_engine() -> std::sync::Arc<SubmatrixEngine> {
    std::sync::Arc::new(SubmatrixEngine::new(EngineOptions {
        parallel: false,
        plan_cache_capacity: None,
        ..EngineOptions::default()
    }))
}

/// Trace one scheduled run of the straggler batch and return the
/// deterministic critical-path analysis plus the job results.
fn traced_run(label: &str, policy: StealPolicy, seed: u64) -> (CriticalPath, Vec<JobResult>) {
    let session = TraceSession::start(label);
    let sched = Scheduler::new(fresh_engine(), RankBudget::default())
        .with_policy(policy)
        .with_trace_label(label);
    let outcome = sched.run(6, straggler_batch(seed));
    let doc = session.to_doc();
    let cp = critical_path(&doc, Some(label)).expect("critical path from traced run");
    (cp, outcome.results)
}

#[test]
fn cost_unit_critical_path_is_identical_across_traced_reruns_and_names_straggler() {
    let (cp_a, _) = traced_run("cp-a", StealPolicy::EpochRebalance, 11);
    let (cp_b, _) = traced_run("cp-b", StealPolicy::EpochRebalance, 11);

    // The deterministic rendering is bit-identical across reruns up to
    // the batch label (cost units only; wall annotations excluded).
    let normalize = |cp: &CriticalPath, label: &str| cp.render().replace(label, "L");
    assert_eq!(
        normalize(&cp_a, "cp-a"),
        normalize(&cp_b, "cp-b"),
        "cost-unit critical path must be a pure function of the schedule"
    );
    assert_eq!(cp_a.total_units, cp_b.total_units);

    // The large job (submission index 0) bounds the batch: it is the
    // largest single step on the path.
    assert_eq!(cp_a.straggler_job, Some(0), "straggler is the 'large' job");
    assert!(cp_a.total_units > 0.0);
    assert!(cp_a.render().contains("straggler: job 0"));

    // The wall totals of the two runs are annotations — almost surely
    // different — while every cost figure matched exactly above.
    assert!(cp_a.epochs.len() >= 2, "straggler batch spans ≥ 2 epochs");
}

#[test]
fn steal_schedule_shortens_the_critical_path() {
    let (cp_steal, res_steal) = traced_run("cp-steal", StealPolicy::EpochRebalance, 11);
    let (cp_base, res_base) = traced_run("cp-base", StealPolicy::Disabled, 11);

    // Same numerics either way (the schedule only moves work around)...
    let comm = SerialComm::new();
    for (s, b) in res_steal.iter().zip(&res_base) {
        assert!(
            s.result
                .to_dense(&comm)
                .allclose(&b.result.to_dense(&comm), 0.0),
            "policy changed numerics for '{}'",
            s.name
        );
    }
    // ...but the steal schedule's cost-unit critical path is strictly
    // shorter: deferred smalls re-run on multi-rank groups instead of
    // serializing behind the static queues.
    assert!(
        cp_steal.total_units < cp_base.total_units,
        "stealing must shorten the cost-unit critical path: {} vs {}",
        cp_steal.total_units,
        cp_base.total_units
    );
}

#[test]
fn idle_attribution_is_deterministic_and_covers_the_world() {
    let (_, _) = traced_run("cp-warm", StealPolicy::EpochRebalance, 7);
    let session = TraceSession::start("cp-idle");
    let sched = Scheduler::new(fresh_engine(), RankBudget::default())
        .with_policy(StealPolicy::EpochRebalance)
        .with_trace_label("cp-idle");
    sched.run(6, straggler_batch(7));
    let doc = session.to_doc();
    let idle = idle_attribution(&doc, Some("cp-idle")).expect("idle attribution");
    assert_eq!(idle.est_idle_units.len(), 6, "one entry per world rank");
    assert!(idle.est_makespan_units > 0.0);
    // The straggler construction leaves at least one rank with estimated
    // idle time and at least one (the large job's) with none... relative
    // to the makespan, idle is bounded by it.
    for &u in &idle.est_idle_units {
        assert!(u >= 0.0 && u <= idle.est_makespan_units);
    }
    // Measured per-rank annotations exist for the whole world (rank.idle
    // events from rank 0 of the traced run).
    assert_eq!(idle.measured_busy_wall_s.len(), 6);
    // The cost-based makespan equals the critical-path total: both walk
    // the same epoch bounds.
    let cp = critical_path(&doc, Some("cp-idle")).unwrap();
    assert!((cp.total_units - idle.est_makespan_units).abs() < 1e-9);
}

#[test]
fn scheduler_never_reads_calibration_artifacts() {
    // Plant a garbage CALIB_perfmodel.json where a (hypothetically)
    // calibration-consuming scheduler would look for it. Invariant 3 —
    // schedules are pure functions of the static perfmodel estimates —
    // means the artifact must change nothing: the traced schedule
    // narration and the results stay bitwise-identical to a run without
    // the file.
    let calib_dir = std::path::Path::new("results");
    std::fs::create_dir_all(calib_dir).unwrap();
    let calib = calib_dir.join("CALIB_perfmodel.json");

    std::fs::remove_file(&calib).ok();
    let (cp_clean, res_clean) = traced_run("cp-nocalib", StealPolicy::EpochRebalance, 23);

    std::fs::write(
        &calib,
        r#"{"bench":"perfmodel","schema_version":1,"git_commit":"x","generated_at":"now",
           "data":{"report_only":true,"phases":[
             {"phase":"solve","seconds_per_unit":1e9,"r_squared":1.0,
              "samples":1,"total_cost":1.0,"total_seconds":1e9}]}}"#,
    )
    .unwrap();
    let (cp_poisoned, res_poisoned) = traced_run("cp-calib", StealPolicy::EpochRebalance, 23);
    std::fs::remove_file(&calib).ok();

    let normalize = |cp: &CriticalPath, label: &str| cp.render().replace(label, "L");
    assert_eq!(
        normalize(&cp_clean, "cp-nocalib"),
        normalize(&cp_poisoned, "cp-calib"),
        "a calibration artifact on disk changed the schedule — invariant 3 broken"
    );
    let comm = SerialComm::new();
    for (a, b) in res_clean.iter().zip(&res_poisoned) {
        assert!(
            a.result
                .to_dense(&comm)
                .allclose(&b.result.to_dense(&comm), 0.0),
            "calibration artifact perturbed job '{}'",
            a.name
        );
    }
}

#[test]
fn traced_scheduler_matches_serial_queue_with_analysis_live() {
    // The analyzer only observes: a traced, analyzed run still matches
    // the serial queue bitwise.
    let serial = JobQueue::new(fresh_engine()).run(straggler_batch(5));
    let (cp, results) = traced_run("cp-serial-check", StealPolicy::EpochRebalance, 5);
    assert!(cp.total_units > 0.0);
    let comm = SerialComm::new();
    assert_eq!(results.len(), serial.len());
    for (s, q) in results.iter().zip(&serial) {
        assert!(
            s.result
                .to_dense(&comm)
                .allclose(&q.result.to_dense(&comm), 0.0),
            "scheduled job '{}' deviates from serial queue",
            s.name
        );
    }
}
