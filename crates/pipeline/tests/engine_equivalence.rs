//! Property tests pinning the engine's numeric phase to the one-shot
//! drivers: plan once, execute N times with varying values, and demand
//! **bitwise-identical** density matrices — across serial and
//! thread-distributed executions — while the engine performs zero symbolic
//! work after the first call.

use proptest::prelude::*;

use sm_comsim::{run_ranks, Comm, SerialComm};
use sm_core::engine::{NumericOptions, SubmatrixEngine};
use sm_core::method::{submatrix_density, SubmatrixOptions};
use sm_dbcsr::{BlockedDims, DbcsrMatrix};
use sm_linalg::Matrix;

/// Deterministic banded symmetric matrix with a gap at 0; `seed` varies
/// the entries, `iter` perturbs the values without touching the pattern.
fn banded_values(nb: usize, bs: usize, half: usize, seed: u64, iter: u64) -> Matrix {
    let n = nb * bs;
    let mut dense = Matrix::from_fn(n, n, |i, j| {
        let bi = (i / bs) as isize;
        let bj = (j / bs) as isize;
        if (bi - bj).unsigned_abs() > half {
            0.0
        } else if i == j {
            let base = if i % 2 == 0 { 1.0 } else { -1.0 };
            base + ((seed % 7) as f64) * 0.01 + (iter as f64) * 0.003
        } else {
            // Strictly positive so no entry (and hence no block) can cancel
            // to zero under symmetrization: the pattern must stay fixed
            // across iterations for the plan-reuse contract to hold.
            let w = 0.6 + ((i * 31 + j * 17 + seed as usize) % 11) as f64 / 11.0;
            0.05 * w / (1.0 + (i as f64 - j as f64).abs()) + (iter as f64) * 1e-4
        }
    });
    dense.symmetrize();
    dense
}

/// Pattern-shape parameters of one generated system.
#[derive(Debug, Clone, Copy)]
struct Shape {
    nb: usize,
    bs: usize,
    half: usize,
    seed: u64,
}

fn engine_density_series<C: Comm>(
    engine: &SubmatrixEngine,
    dims: &BlockedDims,
    shape: Shape,
    iters: u64,
    comm: &C,
) -> Vec<Matrix> {
    let Shape { nb, bs, half, seed } = shape;
    (0..iters)
        .map(|it| {
            let dense = banded_values(nb, bs, half, seed, it);
            let m = DbcsrMatrix::from_dense(&dense, dims.clone(), comm.rank(), comm.size(), 0.0);
            let plan = engine.plan_for_matrix(&m, comm);
            let (mut d, _) = engine.execute(&plan, &m, 0.05, &NumericOptions::default(), comm);
            sm_dbcsr::ops::scale(&mut d, -0.5);
            sm_dbcsr::ops::shift_diag(&mut d, 0.5);
            d.to_dense(comm)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cached_plan_execution_is_bitwise_identical_to_one_shot_driver(
        nb in 3usize..9,
        bs in 1usize..4,
        half in 1usize..3,
        seed in 0u64..1000,
    ) {
        let dims = BlockedDims::uniform(nb, bs);
        let comm = SerialComm::new();
        let engine = SubmatrixEngine::default();
        let iters = 4u64;

        let engine_series =
            engine_density_series(&engine, &dims, Shape { nb, bs, half, seed }, iters, &comm);

        // The engine planned exactly once across all iterations.
        prop_assert_eq!(engine.stats().symbolic_builds, 1);
        prop_assert_eq!(engine.stats().cache_hits, iters as usize - 1);

        // One-shot driver, re-planning every iteration, must agree
        // *bitwise* (tolerance 0.0).
        for it in 0..iters {
            let dense = banded_values(nb, bs, half, seed, it);
            let m = DbcsrMatrix::from_dense(&dense, dims.clone(), 0, 1, 0.0);
            let (d, _) = submatrix_density(&m, 0.05, &SubmatrixOptions::default(), &comm);
            prop_assert!(
                engine_series[it as usize].allclose(&d.to_dense(&comm), 0.0),
                "iteration {} deviates from the one-shot driver", it
            );
        }
    }

    #[test]
    fn thread_comm_execution_matches_serial_bitwise(
        nb in 3usize..8,
        bs in 1usize..3,
        seed in 0u64..1000,
    ) {
        let dims = BlockedDims::uniform(nb, bs);
        let comm = SerialComm::new();
        let iters = 3u64;

        let serial_engine = SubmatrixEngine::default();
        let serial =
            engine_density_series(
                &serial_engine,
                &dims,
                Shape {
                    nb,
                    bs,
                    half: 1,
                    seed,
                },
                iters,
                &comm,
            );

        // One shared engine across 4 rank threads; per-rank plans, each
        // built once.
        let engine = SubmatrixEngine::default();
        let engine_ref = &engine;
        let dims_ref = &dims;
        let (rank_series, _) = run_ranks(4, move |c| {
            engine_density_series(
                engine_ref,
                dims_ref,
                Shape {
                    nb,
                    bs,
                    half: 1,
                    seed,
                },
                iters,
                c,
            )
        });
        prop_assert_eq!(engine.stats().symbolic_builds, 4);
        prop_assert_eq!(
            engine.stats().executions,
            4 * iters as usize
        );

        for series in rank_series {
            for (it, dense) in series.iter().enumerate() {
                prop_assert!(
                    dense.allclose(&serial[it], 1e-13),
                    "distributed iteration {} deviates from serial", it
                );
            }
        }
    }
}
