//! Equivalence/property suite for the fault-injection and epoch-level
//! recovery layer. The headline contract: for **any** deterministic
//! [`FaultPlan`] the scheduler admits, every non-quarantined job of a
//! grand-canonical batch is **bitwise-identical** to the fault-free
//! serial [`JobQueue`] — rank deaths at epoch boundaries, poisoned
//! attempts, retries with backoff, stragglers and message delays change
//! *where and when* a job runs, never *what it computes*. Alongside it:
//!
//! * an epoch-boundary rank failure never hangs the batch (watchdogged)
//!   and strictly shrinks the next epoch's survivor world, which never
//!   grows back;
//! * retry/quarantine counters are exact functions of the seed —
//!   rerunning the same plan reproduces [`FaultStats`] field for field;
//! * the plan-cache consensus accounting identity survives recovery:
//!   `cache hits + symbolic builds = Σ over executed (non-poisoned)
//!   attempts of group size`, on survivor groups of any shape.

use proptest::prelude::*;

use sm_comsim::{FaultPlan, SerialComm};
use sm_dbcsr::{BlockedDims, DbcsrMatrix};
use sm_linalg::Matrix;
use sm_pipeline::{
    EngineOptions, FaultStats, JobQueue, JobResult, MatrixJob, RankBudget, RecoverySchedule,
    Scheduler, SchedulerOutcome, SubmatrixEngine,
};

mod common;
use common::with_watchdog;

/// Deterministic banded symmetric matrix with a spectral gap at 0.
fn banded(nb: usize, bs: usize, half: usize, seed: u64) -> DbcsrMatrix {
    let n = nb * bs;
    let mut dense = Matrix::from_fn(n, n, |i, j| {
        let bi = (i / bs) as isize;
        let bj = (j / bs) as isize;
        if (bi - bj).unsigned_abs() > half {
            0.0
        } else if i == j {
            let base = if i % 2 == 0 { 1.0 } else { -1.0 };
            base + ((seed % 13) as f64) * 0.011
        } else {
            let w = 0.6 + ((i * 29 + j * 13 + seed as usize) % 7) as f64 / 7.0;
            0.05 * w / (1.0 + (i as f64 - j as f64).abs())
        }
    });
    dense.symmetrize();
    DbcsrMatrix::from_dense(&dense, BlockedDims::uniform(nb, bs), 0, 1, 0.0)
}

/// A mixed-size grand-canonical batch (fixed µ = grand canonical: results
/// are bitwise group-size-independent, the precondition of the headline
/// contract — canonical jobs only match to FP-reduction accuracy).
fn mixed_batch(seed: u64, n_small: usize) -> Vec<MatrixJob> {
    let mut jobs = vec![MatrixJob::density("large", banded(8, 2, 1, seed), 0.0)];
    for i in 0..n_small as u64 {
        jobs.push(MatrixJob::density(
            format!("small-{i}"),
            banded(4, 2, 1, seed.wrapping_add(i)),
            0.0,
        ));
    }
    jobs
}

fn fresh_engine() -> std::sync::Arc<SubmatrixEngine> {
    std::sync::Arc::new(SubmatrixEngine::new(EngineOptions {
        parallel: false,
        ..EngineOptions::default()
    }))
}

/// Every **non-quarantined** job bitwise-identical to its serial twin; a
/// quarantined job must carry the empty placeholder shape instead.
fn assert_recovered_bitwise(scheduled: &[JobResult], serial: &[JobResult], what: &str) {
    let comm = SerialComm::new();
    assert_eq!(scheduled.len(), serial.len());
    for (s, q) in scheduled.iter().zip(serial) {
        assert_eq!(s.name, q.name, "submission order broken ({what})");
        if s.quarantined {
            assert_eq!(s.result.store().len(), 0, "quarantined job carries data");
            assert_eq!(s.seconds, 0.0);
            assert_eq!(s.group_size, 0);
            continue;
        }
        assert!(
            s.result
                .to_dense(&comm)
                .allclose(&q.result.to_dense(&comm), 0.0),
            "job '{}' deviates bitwise ({what})",
            s.name
        );
        assert_eq!(s.report.mu, q.report.mu, "job '{}' µ deviates", s.name);
    }
}

/// Survivor worlds are monotonically shrinking, shrink **strictly** at
/// every epoch that commits failures, and always retain rank 0.
fn assert_world_shrinks_monotonically(rec: &RecoverySchedule) {
    let mut prev: Vec<usize> = (0..rec.world_size).collect();
    for (e, ep) in rec.epochs.iter().enumerate() {
        assert!(ep.survivors.contains(&0), "rank 0 left the world");
        assert!(
            ep.survivors.iter().all(|r| prev.contains(r)),
            "epoch {e} resurrected a dead rank"
        );
        if ep.newly_failed.is_empty() {
            assert_eq!(ep.survivors.len(), prev.len());
        } else {
            assert_eq!(ep.survivors.len() + ep.newly_failed.len(), prev.len());
        }
        prev = ep.survivors.clone();
    }
    assert_eq!(prev.len(), rec.stats.final_world_size);
}

/// The consensus accounting identity under recovery: every rank of every
/// group entered the hit/miss consensus exactly once per **executed**
/// attempt (poisoned attempts are skipped whole-group and do no
/// planning), so `hits + builds = executions = Σ group size`.
fn assert_consensus_accounting(outcome: &SchedulerOutcome, engine: &SubmatrixEngine) {
    let rec = outcome.recovery.as_ref().expect("fault path sets recovery");
    let expected: usize = rec
        .epochs
        .iter()
        .flat_map(|ep| ep.groups.iter())
        .map(|g| g.jobs.iter().filter(|a| !a.poisoned).count() * g.ranks.len())
        .sum();
    let stats = engine.stats();
    assert_eq!(
        stats.cache_hits + stats.symbolic_builds,
        expected,
        "plan-cache consensus accounting off under faults: {stats:?}"
    );
    assert_eq!(stats.executions, expected);
}

#[test]
fn epoch_boundary_rank_failure_recovers_bitwise_and_shrinks_world() {
    let jobs = mixed_batch(7, 9);
    let serial = JobQueue::new(fresh_engine()).run(jobs.clone());
    let outcome = with_watchdog(240, move || {
        let plan = FaultPlan::new().fail_rank(3, 1);
        Scheduler::new(fresh_engine(), RankBudget::default())
            .with_fault_plan(plan)
            .run(4, jobs)
    });

    assert_eq!(outcome.fault_stats.rank_failures, 1);
    assert_eq!(outcome.fault_stats.final_world_size, 3);
    assert_eq!(outcome.fault_stats.quarantined_jobs, 0);
    let rec = outcome.recovery.as_ref().unwrap();
    assert_world_shrinks_monotonically(rec);
    // The failure epoch exists and everything after it runs without the
    // dead rank.
    assert!(rec.epochs.len() >= 2);
    assert_eq!(rec.epochs[1].newly_failed, vec![3]);
    for ep in &rec.epochs[1..] {
        assert!(!ep.groups.iter().any(|g| g.ranks.contains(&3)));
    }
    assert_recovered_bitwise(&outcome.results, &serial, "rank death at epoch 1");
    assert!(outcome.results.iter().all(|r| r.attempts == 1));
}

#[test]
fn poisoned_attempt_retries_with_backoff_and_matches_serial() {
    let jobs = mixed_batch(3, 6);
    let serial = JobQueue::new(fresh_engine()).run(jobs.clone());
    let outcome = with_watchdog(240, move || {
        let plan = FaultPlan::new().poison_job(2, 1);
        Scheduler::new(fresh_engine(), RankBudget::default())
            .with_fault_plan(plan)
            .run(4, jobs)
    });

    assert_eq!(outcome.fault_stats.poisoned_attempts, 1);
    assert_eq!(outcome.fault_stats.retries, 1);
    assert_eq!(outcome.fault_stats.quarantined_jobs, 0);
    assert_eq!(outcome.results[2].attempts, 2, "retry consumed attempt 2");
    assert!(!outcome.results[2].quarantined);
    assert_recovered_bitwise(&outcome.results, &serial, "one poisoned attempt");
}

#[test]
fn quarantine_fires_exactly_at_budget_exhaustion() {
    let jobs = mixed_batch(5, 6);
    let serial = JobQueue::new(fresh_engine()).run(jobs.clone());
    let outcome = with_watchdog(240, move || {
        let plan = FaultPlan::new()
            .poison_job(4, 1)
            .poison_job(4, 2)
            .poison_job(4, 3);
        Scheduler::new(fresh_engine(), RankBudget::default())
            .with_fault_plan(plan)
            .with_retry_budget(3)
            .run(4, jobs)
    });

    assert_eq!(outcome.fault_stats.quarantined_jobs, 1);
    assert_eq!(outcome.fault_stats.poisoned_attempts, 3);
    assert_eq!(
        outcome.fault_stats.retries, 2,
        "the budget-exhausting attempt does not requeue"
    );
    assert!(outcome.results[4].quarantined);
    assert_eq!(outcome.results[4].attempts, 3);
    assert!(!outcome.results[4].report.plan_cached);
    // Everyone else is untouched by the quarantine.
    assert_recovered_bitwise(&outcome.results, &serial, "quarantined job");
}

#[test]
fn chaos_matrix_is_bitwise_recovering_and_reproducible() {
    // The CI chaos matrix: 3 seeds × worlds {2, 4, 6}, each seeded plan
    // run twice — once against the serial baseline for the bitwise
    // contract, once more to pin counter reproducibility.
    let jobs = mixed_batch(13, 7);
    let serial = JobQueue::new(fresh_engine()).run(jobs.clone());
    for seed in [1u64, 2, 3] {
        for world in [2usize, 4, 6] {
            let plan = FaultPlan::random(seed, world, jobs.len());
            let run = |jobs: Vec<MatrixJob>| -> (SchedulerOutcome, FaultStats) {
                let plan = plan.clone();
                with_watchdog(240, move || {
                    let engine = fresh_engine();
                    let sched =
                        Scheduler::new(engine.clone(), RankBudget::default()).with_fault_plan(plan);
                    let outcome = sched.run(world, jobs);
                    assert_consensus_accounting(&outcome, &engine);
                    let stats = outcome.fault_stats;
                    (outcome, stats)
                })
            };
            let (outcome, stats) = run(jobs.clone());
            let what = format!("chaos seed {seed} world {world}");
            assert_recovered_bitwise(&outcome.results, &serial, &what);
            assert_world_shrinks_monotonically(outcome.recovery.as_ref().unwrap());

            let (_, stats2) = run(jobs.clone());
            assert_eq!(stats, stats2, "{what}: counters not reproducible");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline contract under proptest-random fault plans at worlds
    /// 2–6: whatever the seeded plan injects, every non-quarantined job
    /// is bitwise-identical to the fault-free serial queue, the world
    /// only ever shrinks, and attempts never exceed the retry budget.
    #[test]
    fn random_fault_plans_preserve_bitwise_equivalence(seed in 0u64..1_000_000, world in 2usize..7) {
        let jobs = mixed_batch(seed % 17, 5);
        let serial = JobQueue::new(fresh_engine()).run(jobs.clone());
        let plan = FaultPlan::random(seed, world, jobs.len());
        let n_jobs = jobs.len();
        let outcome = with_watchdog(240, move || {
            Scheduler::new(fresh_engine(), RankBudget::default())
                .with_fault_plan(plan)
                .run(world, jobs)
        });
        assert_recovered_bitwise(&outcome.results, &serial, &format!("proptest seed {seed}"));
        let rec = outcome.recovery.as_ref().unwrap();
        assert_world_shrinks_monotonically(rec);
        for j in 0..n_jobs {
            prop_assert!(outcome.results[j].attempts >= 1);
            prop_assert!(outcome.results[j].attempts <= rec.retry_budget);
            prop_assert_eq!(outcome.results[j].quarantined, rec.quarantined[j]);
            prop_assert_eq!(outcome.results[j].attempts, rec.job_attempts[j]);
            prop_assert_eq!(outcome.results[j].epoch, rec.job_epoch[j]);
        }
    }
}
