//! Stress suite for the bounded LRU plan cache under epoch regrouping:
//! capacities 1–2 against many distinct fingerprints whose `(rank, size)`
//! keys churn as groups re-split between epochs. Pins that the eviction
//! counters in `EngineStats` are **exact** where the access sequence is
//! deterministic (serialized groups: every symbolic build inserts exactly
//! one entry and each insert evicts precisely down to capacity, so
//! `evictions = builds − cached_plans`), stays a sound inequality under
//! racing groups (overwrites of a key built twice concurrently evict
//! nothing), and that no schedule deadlocks or livelocks — every run sits
//! under a wall-clock watchdog, and the epoch planner itself is
//! iteration-bounded by construction (≤ one epoch per job).

use sm_comsim::SerialComm;
use sm_dbcsr::{BlockedDims, DbcsrMatrix};
use sm_linalg::Matrix;
use sm_pipeline::{
    EngineOptions, JobQueue, JobResult, MatrixJob, RankBudget, Scheduler, SubmatrixEngine,
};

/// Deterministic banded symmetric matrix; `nb` controls the pattern (and
/// thus the fingerprint), `seed` only the values.
fn banded(nb: usize, bs: usize, seed: u64) -> DbcsrMatrix {
    let n = nb * bs;
    let mut dense = Matrix::from_fn(n, n, |i, j| {
        let bi = (i / bs) as isize;
        let bj = (j / bs) as isize;
        if (bi - bj).abs() > 1 {
            0.0
        } else if i == j {
            (if i % 2 == 0 { 1.0 } else { -1.0 }) + ((seed % 11) as f64) * 0.013
        } else {
            0.05 / (1.0 + (i as f64 - j as f64).abs())
        }
    });
    dense.symmetrize();
    DbcsrMatrix::from_dense(&dense, BlockedDims::uniform(nb, bs), 0, 1, 0.0)
}

/// `n` jobs with `n` pairwise-distinct sparsity patterns (nb = 3, 4, …).
fn distinct_pattern_jobs(n: usize, seed: u64) -> Vec<MatrixJob> {
    (0..n)
        .map(|i| {
            MatrixJob::density(
                format!("pat-{i}"),
                banded(3 + i, 2, seed.wrapping_add(i as u64)),
                0.0,
            )
        })
        .collect()
}

fn engine_with_capacity(capacity: usize) -> std::sync::Arc<SubmatrixEngine> {
    std::sync::Arc::new(SubmatrixEngine::new(EngineOptions {
        parallel: false,
        plan_cache_capacity: Some(capacity),
        ..EngineOptions::default()
    }))
}

fn assert_bitwise_equal(a: &[JobResult], b: &[JobResult]) {
    let comm = SerialComm::new();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert!(
            x.result
                .to_dense(&comm)
                .allclose(&y.result.to_dense(&comm), 0.0),
            "job '{}' deviates under cache thrash",
            x.name
        );
    }
}

mod common;
use common::with_watchdog;

#[test]
fn serialized_groups_have_exact_eviction_counters() {
    // One group at a time (max_groups = 1) over a 4-rank world: the cache
    // access sequence is deterministic up to within-group thread order,
    // which cannot change the counts — every job makes all 4 ranks miss
    // (distinct patterns, capacity 2 < 4 keys per job), so builds = 4·J,
    // hits = 0, and each insert beyond the first two evicts exactly one
    // entry: evictions = builds − capacity, exactly.
    let (stats, cached, outcome, serial) = with_watchdog(240, || {
        let jobs = distinct_pattern_jobs(6, 3);
        let serial = JobQueue::new(engine_with_capacity(64)).run(jobs.clone());
        let engine = engine_with_capacity(2);
        let budget = RankBudget {
            max_group_size: None,
            max_groups: Some(1),
        };
        let sched = Scheduler::new(engine.clone(), budget);
        let outcome = sched.run(4, jobs);
        (engine.stats(), engine.cached_plans(), outcome, serial)
    });
    let jobs = outcome.results.len();
    assert_eq!(
        stats.symbolic_builds,
        4 * jobs,
        "every rank misses every job"
    );
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(cached, 2, "cache holds exactly its capacity");
    assert_eq!(
        stats.evictions,
        stats.symbolic_builds - cached,
        "eviction counter must be exact under a serialized schedule"
    );
    assert_eq!(stats.executions, 4 * jobs);
    assert_bitwise_equal(&outcome.results, &serial);
}

#[test]
fn capacity_one_exact_evictions_across_single_rank_groups() {
    // Distinct patterns on single-rank groups: keys never collide, so no
    // insert can overwrite and the identity `evictions = builds −
    // cached_plans` holds under ANY interleaving of the racing groups —
    // the LRU only ever trims to capacity, one eviction per insert.
    let (stats, cached, outcome, serial) = with_watchdog(240, || {
        let jobs = distinct_pattern_jobs(8, 9);
        let serial = JobQueue::new(engine_with_capacity(64)).run(jobs.clone());
        let engine = engine_with_capacity(1);
        let sched = Scheduler::new(engine.clone(), RankBudget::default());
        let outcome = sched.run(4, jobs);
        (engine.stats(), engine.cached_plans(), outcome, serial)
    });
    assert_eq!(cached, 1);
    assert_eq!(
        stats.evictions,
        stats.symbolic_builds - cached,
        "distinct keys cannot overwrite: evictions are exactly builds − retained"
    );
    // Multi-epoch regrouping grows the key space ((rank, size) changes
    // between epochs) but every job is still planned by each of its
    // group's ranks exactly once.
    let expected: usize = (0..outcome.results.len())
        .map(|j| outcome.schedule.ranks_of_job(j).len())
        .sum();
    assert_eq!(stats.cache_hits + stats.symbolic_builds, expected);
    assert_bitwise_equal(&outcome.results, &serial);
}

#[test]
fn recurring_fingerprints_across_epochs_stay_correct_and_bounded() {
    // One recurring small pattern (17 jobs share a fingerprint) plus one
    // large straggler, capacity 2, stealing on: later epochs re-deal the
    // tail onto multi-rank groups, so the same fingerprint is planned at
    // several (rank, size) keys while concurrent groups race hit/miss.
    // Counters here are racy by design (same-key rebuilds may overwrite
    // instead of evict), so the pins are the sound bounds plus
    // correctness: never more evictions than inserts-minus-retained, the
    // cache never overflows, consensus accounting holds, results bitwise.
    let (stats, cached, outcome, serial) = with_watchdog(240, || {
        let mut jobs = vec![MatrixJob::density("large", banded(10, 2, 1), 0.0)];
        for i in 0..17u64 {
            jobs.push(MatrixJob::density(
                format!("small-{i}"),
                banded(4, 2, i),
                0.0,
            ));
        }
        let serial = JobQueue::new(engine_with_capacity(64)).run(jobs.clone());
        let engine = engine_with_capacity(2);
        let sched = Scheduler::new(engine.clone(), RankBudget::default());
        let outcome = sched.run(6, jobs);
        (engine.stats(), engine.cached_plans(), outcome, serial)
    });
    assert!(cached <= 2, "bounded cache overflowed: {cached}");
    assert!(
        stats.evictions <= stats.symbolic_builds - cached,
        "more evictions than inserts can account for: {stats:?}"
    );
    let expected: usize = (0..outcome.results.len())
        .map(|j| outcome.schedule.ranks_of_job(j).len())
        .sum();
    assert_eq!(stats.cache_hits + stats.symbolic_builds, expected);
    assert_eq!(stats.executions, expected);
    assert_bitwise_equal(&outcome.results, &serial);
}

#[test]
fn capacity_zero_disables_caching_under_stealing() {
    // `Some(0)` = no caching at all: every plan call is a consensus miss,
    // nothing is retained, nothing is evicted — even across epochs.
    let (stats, cached, outcome, serial) = with_watchdog(240, || {
        let jobs = distinct_pattern_jobs(7, 1);
        let serial = JobQueue::new(engine_with_capacity(64)).run(jobs.clone());
        let engine = engine_with_capacity(0);
        let sched = Scheduler::new(engine.clone(), RankBudget::default());
        let outcome = sched.run(4, jobs);
        (engine.stats(), engine.cached_plans(), outcome, serial)
    });
    assert_eq!(cached, 0);
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.evictions, 0);
    let expected: usize = (0..outcome.results.len())
        .map(|j| outcome.schedule.ranks_of_job(j).len())
        .sum();
    assert_eq!(stats.symbolic_builds, expected);
    assert_bitwise_equal(&outcome.results, &serial);
}
