//! Mixed-precision equivalence and bandwidth suite.
//!
//! Pins the three acceptance properties of the mixed-precision execution
//! path:
//!
//! 1. **Bytes halve deterministically**: `Fp32` jobs scheduled on
//!    multi-rank groups move exactly half the gathered/scattered value
//!    bytes of identical `Fp64` jobs (counted by the engine's
//!    deterministic value-byte telemetry — no wall clocks), and their
//!    total subgroup traffic strictly shrinks.
//! 2. **Determinism survives the f32 wire**: plain-`Fp32` batches are
//!    bitwise-identical between the serial `JobQueue` and the distributed
//!    `Scheduler` at any world size, because the f32 wire rounding is
//!    idempotent with the solve's own input rounding and plain-`Fp32`
//!    results are f32-representable.
//! 3. **Refinement restores accuracy**: `Fp32Refined` densities match the
//!    `Fp64` reference within 1e-6 elementwise on the water workload
//!    (plain `Fp32` within 1e-4).

use sm_chem::builder::build_system;
use sm_chem::{BasisSet, WaterBox};
use sm_comsim::SerialComm;
use sm_core::baseline::{orthogonalize_sparse, NewtonSchulzOptions};
use sm_core::engine::NumericOptions;
use sm_dbcsr::{BlockedDims, DbcsrMatrix};
use sm_linalg::{Matrix, Precision};
use sm_pipeline::{JobOutput, JobQueue, JobResult, MatrixJob, RankBudget, Scheduler};

/// Deterministic banded symmetric matrix with a spectral gap at 0.
fn banded(nb: usize, bs: usize, seed: u64) -> DbcsrMatrix {
    let n = nb * bs;
    let mut dense = Matrix::from_fn(n, n, |i, j| {
        let bi = (i / bs) as isize;
        let bj = (j / bs) as isize;
        if (bi - bj).unsigned_abs() > 1 {
            0.0
        } else if i == j {
            let base = if i % 2 == 0 { 1.1 } else { -1.1 };
            base + ((seed % 7) as f64) * 0.013
        } else {
            0.05 / (1.0 + (i as f64 - j as f64).abs())
        }
    });
    dense.symmetrize();
    DbcsrMatrix::from_dense(&dense, BlockedDims::uniform(nb, bs), 0, 1, 0.0)
}

/// The orthogonalized Kohn–Sham matrix of a small water cluster plus its
/// chemical potential (the workload of the acceptance criterion).
fn water_workload() -> (DbcsrMatrix, f64) {
    let water = WaterBox::cubic(1, 42);
    let basis = BasisSet::szv().with_range_scale(0.55);
    let comm = SerialComm::new();
    let sys = build_system(&water, &basis, 0, 1, 1e-11);
    let (mut kt, _, report) = orthogonalize_sparse(
        &sys.s,
        &sys.k,
        &NewtonSchulzOptions {
            eps_filter: 1e-9,
            max_iter: 200,
        },
        &comm,
    );
    assert!(report.converged);
    kt.store_mut().filter(3e-2);
    (kt, sys.mu)
}

/// A two-job batch at the given precision (recurring water pattern with
/// shifted values plus one banded system).
fn batch_at(precision: Precision) -> Vec<MatrixJob> {
    let numeric = NumericOptions {
        precision,
        ..NumericOptions::default()
    };
    let (kt, mu) = water_workload();
    vec![
        MatrixJob {
            name: "water/density".into(),
            matrix: kt,
            mu0: mu,
            numeric,
            output: JobOutput::Density,
        },
        MatrixJob {
            name: "banded/sign".into(),
            matrix: banded(6, 2, 3),
            mu0: 0.0,
            numeric,
            output: JobOutput::Sign,
        },
    ]
}

fn dense_results(results: &[JobResult]) -> Vec<Matrix> {
    let comm = SerialComm::new();
    results.iter().map(|r| r.result.to_dense(&comm)).collect()
}

/// One group of 4 ranks running every job: all jobs see real rank-transfer
/// traffic, and the byte comparison is apples-to-apples across precisions.
fn one_group_of_four() -> Scheduler {
    Scheduler::new(
        std::sync::Arc::new(sm_pipeline::SubmatrixEngine::new(
            sm_pipeline::EngineOptions {
                parallel: false,
                ..sm_pipeline::EngineOptions::default()
            },
        )),
        RankBudget {
            max_groups: Some(1),
            max_group_size: None,
        },
    )
}

#[test]
fn fp32_jobs_move_exactly_half_the_value_bytes_of_fp64() {
    let run = |precision: Precision| one_group_of_four().run(4, batch_at(precision));
    let out64 = run(Precision::Fp64);
    let out32 = run(Precision::Fp32);
    let outref = run(Precision::Fp32Refined);
    for ((r64, r32), rref) in out64
        .results
        .iter()
        .zip(&out32.results)
        .zip(&outref.results)
    {
        assert_eq!(r64.precision(), Precision::Fp64);
        assert_eq!(r32.precision(), Precision::Fp32);
        assert!(
            r64.value_bytes() > 0,
            "job '{}' must move value bytes on a 4-rank group",
            r64.name
        );
        // The headline claim, deterministic: half the gather AND half the
        // scatter value bytes.
        assert_eq!(
            r32.value_bytes() * 2,
            r64.value_bytes(),
            "job '{}': fp32 must halve the value bytes",
            r32.name
        );
        assert_eq!(
            r32.report.gather_value_bytes * 2,
            r64.report.gather_value_bytes
        );
        // Refined: f32 gather, f64 scatter.
        assert_eq!(
            rref.report.gather_value_bytes,
            r32.report.gather_value_bytes
        );
        assert_eq!(
            rref.report.scatter_value_bytes,
            r64.report.scatter_value_bytes
        );
        // Whole-job subgroup traffic (value + meta + collectives) strictly
        // shrinks too — the value payloads dominate.
        assert!(
            r32.comm_bytes < r64.comm_bytes,
            "job '{}': fp32 comm {} !< fp64 comm {}",
            r32.name,
            r32.comm_bytes,
            r64.comm_bytes
        );
    }
    // Batch-level: the gathered comm_bytes land in the ~½ regime promised
    // by the wire format (meta traffic keeps the ratio above exactly 0.5).
    let total64: u64 = out64.results.iter().map(|r| r.comm_bytes).sum();
    let total32: u64 = out32.results.iter().map(|r| r.comm_bytes).sum();
    let ratio = total32 as f64 / total64 as f64;
    assert!(
        (0.4..0.8).contains(&ratio),
        "fp32/fp64 comm ratio {ratio} out of the ≈½ regime"
    );
}

#[test]
fn fp32_scheduler_is_bitwise_identical_to_the_serial_queue() {
    let serial = JobQueue::default().run(batch_at(Precision::Fp32));
    let serial_dense = dense_results(&serial);
    for world in [1usize, 2, 4] {
        let outcome = Scheduler::default().run(world, batch_at(Precision::Fp32));
        for (s, d) in dense_results(&outcome.results).iter().zip(&serial_dense) {
            assert!(
                s.allclose(d, 0.0),
                "fp32 batch at world {world} deviates from the serial queue"
            );
        }
    }
}

#[test]
fn fp32_refined_density_matches_fp64_within_1e6_on_water() {
    let queue = JobQueue::default();
    let reference = dense_results(&queue.run(batch_at(Precision::Fp64)));
    let refined = dense_results(&queue.run(batch_at(Precision::Fp32Refined)));
    let plain = dense_results(&queue.run(batch_at(Precision::Fp32)));
    for ((r, f), p) in reference.iter().zip(&refined).zip(&plain) {
        let d_ref = f.max_abs_diff(r);
        let d_plain = p.max_abs_diff(r);
        assert!(d_ref < 1e-6, "refined deviates by {d_ref}");
        assert!(d_plain < 1e-4, "plain fp32 deviates by {d_plain}");
        assert!(d_plain > 0.0, "fp32 should differ from fp64 in roundoff");
    }
    // Precision shares the plan cache: 2 patterns, 3 precisions each, but
    // only 2 symbolic builds ever happen.
    assert_eq!(queue.engine().stats().symbolic_builds, 2);
    assert_eq!(queue.engine().stats().cache_hits, 4);
}
