//! Equivalence suite for the batched multi-system SCF service, mirroring
//! `stealing_equivalence`: whatever epoch/steal schedule the service runs
//! a batch under, **grand-canonical** SCF jobs must produce densities
//! **bitwise-identical** to a plain serial loop of `ScfDriver` runs — at
//! any world size — with identical iteration counts and convergence
//! flags, and the plan-cache hit/miss consensus must stay per-group
//! per-epoch. For iterative jobs the consensus accounting identity
//! generalizes to
//!
//! ```text
//! cache hits + symbolic builds = executions = Σ_jobs group_size × iterations
//! ```
//!
//! (every rank of every group decides hit/miss exactly once per SCF
//! iteration). Canonical-ensemble jobs bisect µ through cross-rank
//! reductions and match to reduction accuracy instead.

use std::sync::Arc;

use sm_chem::{ScfEnsemble, ScfResult};
use sm_comsim::SerialComm;
use sm_dbcsr::{BlockedDims, DbcsrMatrix};
use sm_linalg::Matrix;
use sm_pipeline::{
    serial_scf_loop, BatchJob, EngineOptions, JobQueue, MatrixJob, RankBudget, ScfJobSpec,
    ScfOutcomeExt, ScfService, Scheduler, SchedulerOutcome, StealPolicy, SubmatrixEngine,
};

/// Deterministic banded symmetric matrix with a spectral gap at 0.
fn banded(nb: usize, bs: usize, seed: u64) -> DbcsrMatrix {
    let n = nb * bs;
    let mut dense = Matrix::from_fn(n, n, |i, j| {
        let bi = (i / bs) as isize;
        let bj = (j / bs) as isize;
        if (bi - bj).abs() > 1 {
            0.0
        } else if i == j {
            (if i % 2 == 0 { 1.0 } else { -1.0 }) + ((seed % 13) as f64) * 0.011
        } else {
            0.05 / (1.0 + (i as f64 - j as f64).abs())
        }
    });
    dense.symmetrize();
    DbcsrMatrix::from_dense(&dense, BlockedDims::uniform(nb, bs), 0, 1, 0.0)
}

/// A grand-canonical SCF spec at half filling of the gapped model: fixed
/// µ = 0, the engine's bit-reproducible numeric path.
fn gc_spec(name: &str, nb: usize, seed: u64, max_iter: usize) -> ScfJobSpec {
    let kt0 = banded(nb, 2, seed);
    let n_electrons = kt0.n() as f64;
    let mut spec = ScfJobSpec::new(name, kt0, 0.0, n_electrons);
    spec.scf.max_iter = max_iter;
    spec.scf.tol = 1e-9;
    spec.scf.ensemble = ScfEnsemble::GrandCanonical;
    spec
}

/// The straggler construction of `stealing_equivalence`, lifted to SCF
/// jobs: one large system plus many smalls of a recurring pattern, all
/// with the same iteration budget — so the *relative* cost structure (and
/// with it the multi-epoch steal schedule at world 6) is identical to the
/// one-shot case, while every job is now a whole SCF loop.
fn straggler_specs(max_iter: usize) -> Vec<ScfJobSpec> {
    let mut specs = vec![gc_spec("large", 10, 1, max_iter)];
    for i in 0..18u64 {
        specs.push(gc_spec(&format!("small-{i}"), 4, i, max_iter));
    }
    specs
}

fn fresh_engine(capacity: Option<usize>) -> Arc<SubmatrixEngine> {
    Arc::new(SubmatrixEngine::new(EngineOptions {
        parallel: false,
        plan_cache_capacity: capacity,
        ..EngineOptions::default()
    }))
}

/// Grand-canonical service results must be bitwise-identical to the
/// serial driver loop: same densities (bit for bit), same iteration
/// counts, same convergence flags; energies agree to reduction accuracy
/// (multi-rank groups sum trace contributions in a different order).
fn assert_matches_serial(outcome: &SchedulerOutcome, serial: &[ScfResult], what: &str) {
    let comm = SerialComm::new();
    assert_eq!(outcome.results.len(), serial.len());
    for (r, s) in outcome.results.iter().zip(serial) {
        assert!(
            r.result
                .to_dense(&comm)
                .allclose(&s.density.to_dense(&comm), 0.0),
            "job '{}' density deviates bitwise ({what})",
            r.name
        );
        let scf = r.scf.as_ref().expect("SCF job telemetry present");
        assert_eq!(
            scf.iterations,
            s.iterations.len(),
            "job '{}' iteration count deviates ({what})",
            r.name
        );
        assert_eq!(scf.converged, s.converged, "job '{}' ({what})", r.name);
        let e_serial = s.iterations.last().unwrap().energy;
        assert!(
            (scf.final_energy - e_serial).abs() <= 1e-10 * (1.0 + e_serial.abs()),
            "job '{}' final energy deviates past reduction accuracy: {} vs {e_serial} ({what})",
            r.name,
            scf.final_energy
        );
        // Grand canonical: µ is pinned to the seed on both paths.
        assert_eq!(r.report.mu, 0.0);
    }
}

/// The iterative form of the consensus accounting identity.
fn assert_consensus_accounting(outcome: &SchedulerOutcome, engine: &SubmatrixEngine) {
    let expected: usize = outcome
        .results
        .iter()
        .enumerate()
        .map(|(j, r)| {
            let iters = r.scf.as_ref().map_or(1, |s| s.iterations);
            outcome.schedule.ranks_of_job(j).len() * iters
        })
        .sum();
    let stats = engine.stats();
    assert_eq!(
        stats.cache_hits + stats.symbolic_builds,
        expected,
        "plan-cache consensus accounting off: {stats:?}, expected {expected} decisions"
    );
    assert_eq!(stats.executions, expected);
}

// Wall-clock watchdog from the shared test-support module (a divergent
// consensus deadlocks inside a collective; fail loudly instead of
// hanging the harness).
mod common;
use common::with_watchdog;

#[test]
fn grand_canonical_batch_is_bitwise_serial_at_multiple_world_sizes() {
    // The acceptance criterion: a grand-canonical multi-system batch
    // through ScfService is bitwise-identical to serially looping
    // ScfDriver, at ≥ 2 world sizes, with consensus accounting intact.
    let specs = straggler_specs(5);
    let serial = serial_scf_loop(&fresh_engine(None), &specs);
    for world in [2usize, 4, 6] {
        let engine = fresh_engine(None);
        let service = ScfService::new(engine.clone(), RankBudget::default());
        let outcome = service.run(world, specs.clone());
        assert_matches_serial(&outcome, &serial, &format!("world {world}"));
        assert_consensus_accounting(&outcome, &engine);
    }
}

#[test]
fn scf_straggler_batch_steals_and_stays_bitwise() {
    // The same relative cost skew that makes the one-shot straggler batch
    // steal at world 6 must make the SCF batch steal too (costs scale
    // uniformly with the shared iteration budget) — and stealing must
    // stay invisible in the results.
    let specs = straggler_specs(5);
    let serial = serial_scf_loop(&fresh_engine(None), &specs);
    let engine = fresh_engine(None);
    let service = ScfService::new(engine.clone(), RankBudget::default());
    let outcome = service.run(6, specs);
    let stats = &outcome.steal_stats;
    assert!(
        stats.epochs >= 2,
        "SCF batch stayed single-epoch: {stats:?}"
    );
    assert!(stats.stolen_jobs >= 1, "no SCF job was stolen: {stats:?}");
    assert!(
        stats.est_max_rank_idle_epochs < stats.est_max_rank_idle_static,
        "stealing must lower the max-rank idle estimate: {stats:?}"
    );
    for (j, r) in outcome.results.iter().enumerate() {
        assert_eq!(r.epoch, outcome.schedule.job_epoch[j]);
        assert_eq!(r.stolen_ranks, outcome.schedule.job_stolen_ranks[j]);
        assert_eq!(r.group_size, outcome.schedule.ranks_of_job(j).len());
    }
    assert_matches_serial(&outcome, &serial, "stealing vs serial driver loop");
    assert_consensus_accounting(&outcome, &engine);
}

#[test]
fn disabled_policy_matches_serial_too() {
    let specs = straggler_specs(4);
    let serial = serial_scf_loop(&fresh_engine(None), &specs);
    let engine = fresh_engine(None);
    let service =
        ScfService::new(engine.clone(), RankBudget::default()).with_policy(StealPolicy::Disabled);
    let outcome = service.run(6, specs);
    assert_eq!(outcome.steal_stats.epochs, 1);
    assert_eq!(outcome.steal_stats.stolen_jobs, 0);
    assert_matches_serial(&outcome, &serial, "static policy vs serial driver loop");
    assert_consensus_accounting(&outcome, &engine);
}

#[test]
fn consensus_survives_bounded_cache_under_scf_regrouping() {
    // Hostile cache pressure: capacity 1 while several SCF loops (each
    // re-entering the consensus every iteration) run concurrently under a
    // multi-epoch steal schedule. A divergent hit/miss consensus would
    // deadlock a group inside the collective pattern gather (caught by
    // the watchdog) or break the accounting identity.
    let (outcome, stats, cached, serial) = with_watchdog(300, || {
        let specs = straggler_specs(3);
        let serial = serial_scf_loop(&fresh_engine(None), &specs);
        let engine = fresh_engine(Some(1));
        let service = ScfService::new(engine.clone(), RankBudget::default());
        let outcome = service.run(6, specs);
        (outcome, engine.stats(), engine.cached_plans(), serial)
    });
    assert!(outcome.steal_stats.epochs >= 2);
    assert_matches_serial(&outcome, &serial, "capacity-1 cache");
    let expected: usize = outcome
        .results
        .iter()
        .enumerate()
        .map(|(j, r)| {
            outcome.schedule.ranks_of_job(j).len() * r.scf.as_ref().map_or(1, |s| s.iterations)
        })
        .sum();
    assert_eq!(stats.cache_hits + stats.symbolic_builds, expected);
    assert!(cached <= 1, "bounded cache overflowed: {cached} plans");
}

#[test]
fn traced_scf_batches_stay_bitwise_with_deterministic_span_trees() {
    // The observability gate for the service path: the full SCF straggler
    // batch with tracing live must stay bitwise-identical to the serial
    // driver loop, and the logical span tree — which nests SCF iteration
    // spans between job and engine-phase spans — must be identical across
    // reruns at a fixed world size.
    let specs = straggler_specs(5);
    let serial = serial_scf_loop(&fresh_engine(None), &specs);

    let run_traced = |label: &'static str| {
        let session = sm_trace::TraceSession::start(label);
        let engine = fresh_engine(None);
        let service =
            ScfService::new(engine.clone(), RankBudget::default()).with_trace_label(label);
        let outcome = service.run(6, specs.clone());
        assert_matches_serial(&outcome, &serial, label);
        assert_consensus_accounting(&outcome, &engine);
        session.span_tree_under(&format!("batch:{label}"))
    };

    let first = run_traced("svc-trace-a");
    assert!(
        first.contains("/iter:0/"),
        "missing SCF iteration level:\n{first}"
    );
    assert!(
        first.contains("/iter:0/phase:solve"),
        "phases must nest under iterations"
    );
    assert!(
        first.contains("scf.iteration"),
        "missing per-iteration events"
    );
    assert!(
        first.contains("plan.decision"),
        "missing plan consensus events"
    );

    let second = run_traced("svc-trace-b");
    let relabeled = |tree: &str, label: &str| tree.replace(&format!("batch:{label}"), "batch:#");
    assert_eq!(
        relabeled(&first, "svc-trace-a"),
        relabeled(&second, "svc-trace-b"),
        "service span tree must be deterministic across reruns"
    );
}

#[test]
fn canonical_specs_match_serial_to_reduction_accuracy() {
    // Canonical µ bisection reduces electron counts across the group, so
    // multi-rank groups match the serial loop to floating-point reduction
    // accuracy (bitwise only for 1-rank groups).
    let mut specs = Vec::new();
    for (i, nb) in [5usize, 4, 4].iter().enumerate() {
        let kt0 = banded(*nb, 2, i as u64);
        let n_electrons = kt0.n() as f64;
        let mut spec = ScfJobSpec::new(format!("canonical-{i}"), kt0, 0.0, n_electrons);
        spec.scf.max_iter = 4;
        // Canonical is the driver default (ScfEnsemble::Canonical); the
        // µ-bisection target is built from the spec's n_electrons and the
        // mu_tol/mu_max_iter knobs.
        assert_eq!(spec.scf.ensemble, ScfEnsemble::Canonical);
        specs.push(spec);
    }
    let serial = serial_scf_loop(&fresh_engine(None), &specs);
    let comm = SerialComm::new();
    for world in [2usize, 5] {
        let engine = fresh_engine(None);
        let service = ScfService::new(engine.clone(), RankBudget::default());
        let outcome = service.run(world, specs.clone());
        for (r, s) in outcome.results.iter().zip(&serial) {
            assert!(
                r.result
                    .to_dense(&comm)
                    .allclose(&s.density.to_dense(&comm), 1e-10),
                "job '{}' canonical density deviates at world {world}",
                r.name
            );
            let scf = r.scf.as_ref().unwrap();
            assert_eq!(scf.iterations, s.iterations.len());
            assert_eq!(scf.converged, s.converged);
        }
        assert_consensus_accounting(&outcome, &engine);
    }
}

#[test]
fn mixed_matrix_and_scf_batch_shares_one_schedule() {
    // The generalized job abstraction end to end: one batch mixing
    // one-shot matrix jobs with iterative SCF jobs. Matrix results must
    // match the serial JobQueue bitwise, SCF results the serial driver
    // loop — out of the same scheduler run, same engine, same cache.
    let comm = SerialComm::new();
    let specs = vec![gc_spec("scf-a", 6, 2, 4), gc_spec("scf-b", 4, 7, 4)];
    let mjobs = vec![
        MatrixJob::density("mat-a", banded(8, 2, 3), 0.0),
        MatrixJob::density("mat-b", banded(4, 2, 9), 0.1),
    ];

    let serial_scf = serial_scf_loop(&fresh_engine(None), &specs);
    let serial_mat = JobQueue::new(fresh_engine(None)).run(mjobs.clone());

    let engine = fresh_engine(None);
    let sched = Scheduler::new(engine.clone(), RankBudget::default());
    let batch: Vec<BatchJob> = vec![
        BatchJob::Scf(specs[0].clone()),
        BatchJob::Matrix(mjobs[0].clone()),
        BatchJob::Scf(specs[1].clone()),
        BatchJob::Matrix(mjobs[1].clone()),
    ];
    let outcome = sched.run_batch(4, batch);

    // Submission order preserved across kinds.
    let names: Vec<&str> = outcome.results.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(names, ["scf-a", "mat-a", "scf-b", "mat-b"]);
    // SCF jobs: bitwise vs the serial driver loop; telemetry present.
    for (ri, si) in [(0usize, 0usize), (2, 1)] {
        let r = &outcome.results[ri];
        assert!(r
            .result
            .to_dense(&comm)
            .allclose(&serial_scf[si].density.to_dense(&comm), 0.0));
        assert!(r.scf.is_some());
    }
    // Matrix jobs: bitwise vs the serial queue; no SCF telemetry.
    for (ri, si) in [(1usize, 0usize), (3, 1)] {
        let r = &outcome.results[ri];
        assert!(r
            .result
            .to_dense(&comm)
            .allclose(&serial_mat[si].result.to_dense(&comm), 0.0));
        assert!(r.scf.is_none());
    }
    assert_eq!(outcome.results.converged_jobs(), 0); // tol 1e-9, 4 iters
    assert_eq!(
        outcome.results.total_iterations(),
        outcome.results[0].scf.as_ref().unwrap().iterations
            + outcome.results[2].scf.as_ref().unwrap().iterations
    );
    assert_consensus_accounting(&outcome, &engine);
}
