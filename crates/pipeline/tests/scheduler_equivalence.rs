//! Equivalence suite pinning the distributed [`Scheduler`] to the serial
//! [`JobQueue`]: mixed job batches run through subcommunicator groups of
//! 1, 2 and 4 ranks must produce **bitwise-identical** `JobOutput`s
//! (grand-canonical jobs; canonical µ bisection reduces across ranks, so
//! it is checked to reduction accuracy separately).

use proptest::prelude::*;

use sm_comsim::SerialComm;
use sm_core::engine::{Ensemble, NumericOptions};
use sm_core::solver::{SignMethod, SolveOptions};
use sm_dbcsr::{BlockedDims, DbcsrMatrix};
use sm_linalg::Matrix;
use sm_pipeline::{JobOutput, JobQueue, MatrixJob, RankBudget, Scheduler};

/// Deterministic banded symmetric matrix with a spectral gap at 0.
fn banded(nb: usize, bs: usize, half: usize, seed: u64) -> DbcsrMatrix {
    let n = nb * bs;
    let mut dense = Matrix::from_fn(n, n, |i, j| {
        let bi = (i / bs) as isize;
        let bj = (j / bs) as isize;
        if (bi - bj).unsigned_abs() > half {
            0.0
        } else if i == j {
            let base = if i % 2 == 0 { 1.0 } else { -1.0 };
            base + ((seed % 13) as f64) * 0.011
        } else {
            let w = 0.6 + ((i * 29 + j * 13 + seed as usize) % 7) as f64 / 7.0;
            0.05 * w / (1.0 + (i as f64 - j as f64).abs())
        }
    });
    dense.symmetrize();
    DbcsrMatrix::from_dense(&dense, BlockedDims::uniform(nb, bs), 0, 1, 0.0)
}

/// A mixed grand-canonical batch: sign and density jobs, two solvers,
/// several sizes, one recurring pattern.
fn mixed_batch(seed: u64) -> Vec<MatrixJob> {
    vec![
        MatrixJob::density("density-small", banded(4, 2, 1, seed), 0.0),
        MatrixJob {
            name: "sign-large".into(),
            matrix: banded(8, 2, 1, seed.wrapping_add(1)),
            mu0: 0.05,
            numeric: NumericOptions::default(),
            output: JobOutput::Sign,
        },
        MatrixJob {
            name: "newton-schulz".into(),
            matrix: banded(6, 2, 1, seed.wrapping_add(2)),
            mu0: 0.0,
            numeric: NumericOptions {
                solve: SolveOptions {
                    method: SignMethod::NewtonSchulz,
                    ..SolveOptions::default()
                },
                ..NumericOptions::default()
            },
            output: JobOutput::Sign,
        },
        // Same pattern as density-small, different values: exercises the
        // shared plan cache across groups.
        MatrixJob::density(
            "density-small-again",
            banded(4, 2, 1, seed.wrapping_add(3)),
            0.0,
        ),
    ]
}

fn assert_batches_bitwise_equal(
    scheduled: &[sm_pipeline::JobResult],
    serial: &[sm_pipeline::JobResult],
    ranks_per_job: usize,
) {
    let comm = SerialComm::new();
    assert_eq!(scheduled.len(), serial.len());
    for (s, q) in scheduled.iter().zip(serial) {
        assert_eq!(s.name, q.name, "results must come back in submission order");
        assert!(
            s.result
                .to_dense(&comm)
                .allclose(&q.result.to_dense(&comm), 0.0),
            "job '{}' deviates from the serial queue at {} ranks/job",
            s.name,
            ranks_per_job
        );
        assert_eq!(s.report.mu, q.report.mu, "job '{}' µ deviates", s.name);
    }
}

#[test]
fn scheduler_matches_queue_bitwise_at_1_2_4_ranks_per_job() {
    let jobs = mixed_batch(17);
    let serial = JobQueue::default().run(jobs.clone());
    for ranks_per_job in [1usize, 2, 4] {
        let world = jobs.len() * ranks_per_job;
        let sched = Scheduler::new(
            std::sync::Arc::new(sm_pipeline::SubmatrixEngine::new(
                sm_pipeline::EngineOptions {
                    parallel: false,
                    ..sm_pipeline::EngineOptions::default()
                },
            )),
            RankBudget {
                max_group_size: Some(ranks_per_job),
                max_groups: None,
            },
        );
        let outcome = sched.run(world, jobs.clone());
        // The budget cap and world size pin every group to the requested
        // width.
        for g in &outcome.plan.groups {
            assert_eq!(g.ranks.len(), ranks_per_job);
        }
        assert_batches_bitwise_equal(&outcome.results, &serial, ranks_per_job);
        // Telemetry: group sizes reported, and multi-rank groups moved
        // real subgroup traffic.
        for r in &outcome.results {
            assert_eq!(r.group_size, ranks_per_job);
            assert!(r.seconds >= 0.0);
            if ranks_per_job > 1 {
                assert!(
                    r.comm_bytes > 0,
                    "job '{}' on {} ranks moved no subgroup bytes",
                    r.name,
                    ranks_per_job
                );
            } else {
                assert_eq!(r.comm_bytes, 0);
            }
        }
    }
}

#[test]
fn scheduler_handles_more_jobs_than_ranks() {
    // 4 jobs on a 2-rank world: groups run multiple jobs sequentially.
    let jobs = mixed_batch(3);
    let serial = JobQueue::default().run(jobs.clone());
    let outcome = Scheduler::default().run(2, jobs);
    assert_eq!(outcome.plan.groups.len(), 2);
    assert_batches_bitwise_equal(&outcome.results, &serial, 1);
}

#[test]
fn scheduler_shares_plan_cache_across_groups() {
    // Two jobs with the same pattern scheduled on two 1-rank groups: the
    // second group hits the plan the first built (same (fp, rank, size)
    // key), so the engine builds exactly one plan.
    let jobs = vec![
        MatrixJob::density("a", banded(5, 2, 1, 1), 0.0),
        MatrixJob::density("b", banded(5, 2, 1, 2), 0.0),
    ];
    let sched = Scheduler::default();
    let outcome = sched.run(2, jobs);
    assert_eq!(outcome.results.len(), 2);
    let stats = sched.engine().stats();
    // Concurrent same-pattern groups may race to build (both miss), but
    // at least one execution path must exist and the cache holds one plan.
    assert!(stats.symbolic_builds >= 1);
    assert_eq!(sched.engine().cached_plans(), 1);
    assert_eq!(stats.executions, 2);
}

#[test]
fn scheduler_with_capacity_one_cache_still_correct() {
    // The acceptance scenario: a capacity-1 plan cache under a
    // multi-pattern batch must evict (recorded) and never reuse a wrong
    // plan.
    let jobs = mixed_batch(9);
    let serial = JobQueue::default().run(jobs.clone());
    let engine = std::sync::Arc::new(sm_pipeline::SubmatrixEngine::new(
        sm_pipeline::EngineOptions {
            parallel: false,
            plan_cache_capacity: Some(1),
            ..sm_pipeline::EngineOptions::default()
        },
    ));
    let sched = Scheduler::new(engine, RankBudget::default());
    let outcome = sched.run(2, jobs);
    assert_batches_bitwise_equal(&outcome.results, &serial, 1);
    let stats = sched.engine().stats();
    assert!(
        stats.evictions > 0,
        "three distinct patterns through a capacity-1 cache must evict"
    );
    assert_eq!(sched.engine().cached_plans(), 1);
}

#[test]
fn canonical_jobs_match_to_reduction_accuracy() {
    // Canonical µ bisection reduces electron counts across the group, so
    // across group sizes the result matches to summation accuracy, not
    // bitwise.
    let comm = SerialComm::new();
    let jobs = vec![MatrixJob {
        name: "canonical".into(),
        matrix: banded(6, 2, 1, 5),
        mu0: 0.0,
        numeric: NumericOptions {
            ensemble: Ensemble::Canonical {
                n_electrons: 8.0,
                tol: 1e-9,
                max_iter: 200,
            },
            ..NumericOptions::default()
        },
        output: JobOutput::Density,
    }];
    let serial = JobQueue::default().run(jobs.clone());
    let outcome = Scheduler::default().run(2, jobs);
    let a = outcome.results[0].result.to_dense(&comm);
    let b = serial[0].result.to_dense(&comm);
    assert!(
        a.allclose(&b, 1e-10),
        "canonical density deviates beyond reduction accuracy"
    );
    assert!((outcome.results[0].report.mu - serial[0].report.mu).abs() < 1e-9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property form of the equivalence: random shapes and seeds, random
    /// world widths, grand-canonical density jobs — always bitwise equal
    /// to the serial queue.
    #[test]
    fn random_batches_match_serial_queue_bitwise(
        nb in 3usize..7,
        bs in 1usize..3,
        seed in 0u64..1000,
        ranks_per_job in 1usize..3,
    ) {
        let jobs = vec![
            MatrixJob::density("p", banded(nb, bs, 1, seed), 0.0),
            MatrixJob::density("q", banded(nb + 1, bs, 1, seed.wrapping_add(7)), 0.02),
        ];
        let serial = JobQueue::default().run(jobs.clone());
        let sched = Scheduler::new(
            std::sync::Arc::new(sm_pipeline::SubmatrixEngine::new(
                sm_pipeline::EngineOptions {
                    parallel: false,
                    ..sm_pipeline::EngineOptions::default()
                },
            )),
            RankBudget { max_group_size: Some(ranks_per_job), max_groups: None },
        );
        let outcome = sched.run(jobs.len() * ranks_per_job, jobs);
        let comm = SerialComm::new();
        for (s, q) in outcome.results.iter().zip(&serial) {
            prop_assert!(
                s.result.to_dense(&comm).allclose(&q.result.to_dense(&comm), 0.0),
                "job '{}' deviates at {} ranks/job", s.name, ranks_per_job
            );
        }
    }
}
