//! Equivalence suite for the resident streaming service, extending
//! `scf_service_equivalence` to the streamed shape: however jobs arrive —
//! interleaved priorities, multiple admission windows, a restart in the
//! middle — each closed window must produce results **bitwise-identical**
//! to a serial `ScfDriver` loop over the same admitted set in the same
//! canonical order, and the plan-manifest round-trip must make a warm
//! restart replan nothing (`builds == 0` on resubmission), with the
//! consensus accounting identity `hits + builds = executions` intact
//! across export/import.

use std::sync::Arc;

use sm_chem::{ScfEnsemble, ScfResult};
use sm_comsim::SerialComm;
use sm_dbcsr::{BlockedDims, DbcsrMatrix};
use sm_linalg::Matrix;
use sm_pipeline::{
    serial_scf_loop, EngineOptions, Priority, ScfJobSpec, ServiceConfig, ServiceError,
    StreamingScfService, SubmatrixEngine, WindowOutcome,
};

/// Deterministic banded symmetric matrix with a spectral gap at 0 (the
/// `scf_service_equivalence` construction).
fn banded(nb: usize, bs: usize, seed: u64) -> DbcsrMatrix {
    let n = nb * bs;
    let mut dense = Matrix::from_fn(n, n, |i, j| {
        let bi = (i / bs) as isize;
        let bj = (j / bs) as isize;
        if (bi - bj).abs() > 1 {
            0.0
        } else if i == j {
            (if i % 2 == 0 { 1.0 } else { -1.0 }) + ((seed % 13) as f64) * 0.011
        } else {
            0.05 / (1.0 + (i as f64 - j as f64).abs())
        }
    });
    dense.symmetrize();
    DbcsrMatrix::from_dense(&dense, BlockedDims::uniform(nb, bs), 0, 1, 0.0)
}

fn gc_spec(name: &str, nb: usize, seed: u64, max_iter: usize) -> ScfJobSpec {
    let kt0 = banded(nb, 2, seed);
    let n_electrons = kt0.n() as f64;
    let mut spec = ScfJobSpec::new(name, kt0, 0.0, n_electrons);
    spec.scf.max_iter = max_iter;
    spec.scf.tol = 1e-9;
    spec.scf.ensemble = ScfEnsemble::GrandCanonical;
    spec
}

fn fresh_engine(capacity: Option<usize>) -> Arc<SubmatrixEngine> {
    Arc::new(SubmatrixEngine::new(EngineOptions {
        parallel: false,
        plan_cache_capacity: capacity,
        ..EngineOptions::default()
    }))
}

fn fresh_service(engine: Arc<SubmatrixEngine>, world: usize) -> StreamingScfService {
    StreamingScfService::new(
        engine,
        ServiceConfig {
            world_size: world,
            queue_capacity: 32,
            trace_label: "svc-eq".to_string(),
            ..ServiceConfig::default()
        },
    )
}

/// Rebuild the specs a window admitted, in the window's canonical order,
/// from the (name → spec) workload table.
fn admitted_specs(w: &WindowOutcome, table: &[ScfJobSpec]) -> Vec<ScfJobSpec> {
    w.admitted
        .iter()
        .map(|name| {
            table
                .iter()
                .find(|s| &s.name == name)
                .expect("admitted job came from the workload")
                .clone()
        })
        .collect()
}

/// Bitwise density + iteration/convergence agreement against the serial
/// reference (energies to reduction accuracy).
fn assert_window_matches_serial(w: &WindowOutcome, serial: &[ScfResult], what: &str) {
    let comm = SerialComm::new();
    assert_eq!(w.outcome.results.len(), serial.len());
    for (r, s) in w.outcome.results.iter().zip(serial) {
        assert!(
            r.result
                .to_dense(&comm)
                .allclose(&s.density.to_dense(&comm), 0.0),
            "job '{}' density deviates bitwise ({what})",
            r.name
        );
        let scf = r.scf.as_ref().expect("SCF telemetry present");
        assert_eq!(
            scf.iterations,
            s.iterations.len(),
            "job '{}' ({what})",
            r.name
        );
        assert_eq!(scf.converged, s.converged, "job '{}' ({what})", r.name);
    }
}

mod common;
use common::with_watchdog;

#[test]
fn streamed_windows_are_bitwise_serial_per_window() {
    // Three admission windows with interleaved mixed priorities, all at
    // world 4: each window's results must be bitwise-identical to a
    // serial loop over that window's admitted set (in canonical order) —
    // arrival timing must not matter, only window membership.
    with_watchdog(300, || {
        let workload: Vec<ScfJobSpec> = vec![
            gc_spec("w0-a", 6, 1, 5),
            gc_spec("w0-b", 4, 2, 5),
            gc_spec("w0-c", 5, 3, 5),
            gc_spec("w1-a", 4, 4, 5),
            gc_spec("w1-b", 8, 5, 5),
            gc_spec("w1-c", 4, 6, 5),
            gc_spec("w1-d", 5, 7, 5),
            gc_spec("w2-a", 6, 1, 5), // resubmission of w0-a's pattern
        ];
        let spec_of = |name: &str| {
            workload
                .iter()
                .find(|s| s.name == name)
                .expect("workload spec")
                .clone()
        };

        let engine = fresh_engine(None);
        let mut svc = fresh_service(engine, 4);

        // Window 0: mixed priorities, submitted out of canonical order.
        svc.submit(spec_of("w0-a"), Priority::Low).unwrap();
        svc.submit(spec_of("w0-b"), Priority::High).unwrap();
        svc.submit(spec_of("w0-c"), Priority::Normal).unwrap();
        let w0 = svc.close_window().expect("window 0");
        assert_eq!(w0.admitted, vec!["w0-b", "w0-c", "w0-a"]);

        // Window 1: four jobs, two priority classes, FIFO within each.
        svc.submit(spec_of("w1-a"), Priority::Normal).unwrap();
        svc.submit(spec_of("w1-b"), Priority::Normal).unwrap();
        svc.submit(spec_of("w1-c"), Priority::High).unwrap();
        svc.submit(spec_of("w1-d"), Priority::Normal).unwrap();
        let w1 = svc.close_window().expect("window 1");
        assert_eq!(w1.admitted, vec!["w1-c", "w1-a", "w1-b", "w1-d"]);

        // Window 2: a single resubmitted pattern.
        svc.submit(spec_of("w2-a"), Priority::Normal).unwrap();
        let w2 = svc.close_window().expect("window 2");

        for (w, what) in [(&w0, "window 0"), (&w1, "window 1"), (&w2, "window 2")] {
            let specs = admitted_specs(w, &workload);
            let serial = serial_scf_loop(&fresh_engine(None), &specs);
            assert_window_matches_serial(w, &serial, what);
        }

        // Consensus accounting across the whole stream: every rank of
        // every group decides hit/miss once per SCF iteration, across all
        // windows, on the one shared engine.
        let expected: usize = [&w0, &w1, &w2]
            .iter()
            .flat_map(|w| {
                w.outcome.results.iter().enumerate().map(|(j, r)| {
                    let iters = r.scf.as_ref().map_or(1, |s| s.iterations);
                    w.outcome.schedule.ranks_of_job(j).len() * iters
                })
            })
            .sum();
        let stats = svc.engine().stats();
        assert_eq!(
            stats.cache_hits + stats.symbolic_builds,
            expected,
            "consensus accounting off across windows: {stats:?}"
        );
        assert_eq!(stats.executions, expected);
        assert_eq!(svc.stats().windows, 3);
        assert_eq!(svc.stats().jobs_run, 8);
    });
}

#[test]
fn manifest_roundtrip_replans_nothing_on_restart() {
    // Kill-and-restart: run a window, spill the plan cache, stand up a
    // fresh engine (a new process in miniature), import, resubmit the
    // same systems — the restarted service must report zero symbolic
    // builds, and `hits + builds = executions` must hold on both sides.
    with_watchdog(300, || {
        let specs = vec![
            gc_spec("r-a", 6, 1, 4),
            gc_spec("r-b", 4, 2, 4),
            gc_spec("r-c", 5, 3, 4),
        ];
        let dir = std::env::temp_dir().join("sm_service_equivalence");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let manifest = dir.join("restart.smplans");

        let engine = fresh_engine(None);
        let mut svc = fresh_service(Arc::clone(&engine), 4);
        for s in &specs {
            svc.submit(s.clone(), Priority::Normal).unwrap();
        }
        let before = svc.close_window().expect("cold window");
        let cold = engine.stats();
        assert!(cold.symbolic_builds > 0, "cold window must build plans");
        let exported = engine.export_plans(&manifest).expect("export");
        assert_eq!(exported, engine.cached_plans());

        // "Restart": fresh engine, import, resubmit the same window.
        let engine2 = fresh_engine(None);
        let imported = engine2.import_plans(&manifest).expect("import");
        assert_eq!(imported, exported);
        let mut svc2 = fresh_service(Arc::clone(&engine2), 4);
        for s in &specs {
            svc2.submit(s.clone(), Priority::Normal).unwrap();
        }
        let after = svc2.close_window().expect("warm window");
        let warm = engine2.stats();
        assert_eq!(warm.symbolic_builds, 0, "warm restart must replan nothing");
        assert_eq!(
            warm.cache_hits, warm.executions,
            "every warm planning decision is a hit"
        );
        assert_eq!(
            cold.cache_hits + cold.symbolic_builds,
            warm.cache_hits,
            "same admitted set ⇒ same number of planning decisions"
        );

        // And the restart is invisible in the numbers.
        let comm = SerialComm::new();
        for (b, a) in before.outcome.results.iter().zip(&after.outcome.results) {
            assert_eq!(b.name, a.name);
            assert!(
                b.result
                    .to_dense(&comm)
                    .allclose(&a.result.to_dense(&comm), 0.0),
                "job '{}' density changed across the restart",
                b.name
            );
        }
    });
}

#[test]
fn backpressure_and_rejection_do_not_disturb_the_window() {
    // A refused submission (queue full) must leave the admitted set — and
    // therefore the window's results — exactly as if it never happened.
    with_watchdog(300, || {
        let engine = fresh_engine(None);
        let mut svc = StreamingScfService::new(
            engine,
            ServiceConfig {
                world_size: 4,
                queue_capacity: 2,
                trace_label: "svc-bp".to_string(),
                ..ServiceConfig::default()
            },
        );
        svc.submit(gc_spec("keep-1", 4, 1, 4), Priority::Normal)
            .unwrap();
        svc.submit(gc_spec("keep-2", 5, 2, 4), Priority::Normal)
            .unwrap();
        assert!(matches!(
            svc.submit(gc_spec("shed", 6, 3, 4), Priority::High),
            Err(ServiceError::Backpressure { capacity: 2 })
        ));
        let w = svc.close_window().expect("window");
        assert_eq!(w.admitted, vec!["keep-1", "keep-2"]);

        let specs = vec![gc_spec("keep-1", 4, 1, 4), gc_spec("keep-2", 5, 2, 4)];
        let serial = serial_scf_loop(&fresh_engine(None), &specs);
        assert_window_matches_serial(&w, &serial, "backpressured window");
        assert_eq!(svc.stats().backpressure_rejects, 1);
    });
}
