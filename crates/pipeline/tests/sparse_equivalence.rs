//! Sparse-backend conformance suite: the scenario matrix pinning the
//! sparse-CSR submatrix solve path against the dense reference across
//! every execution mode the pipeline offers.
//!
//! Axes: solve backend policy {`Dense`, `SparseCsr`} × numeric precision
//! {`Fp64`, `Fp32`, `Fp32Refined`} × execution {serial [`JobQueue`],
//! distributed [`Scheduler`] at worlds 2/4/6}. Pinned properties:
//!
//! 1. **Exactness at `eps = 0`**: the unfiltered sparse-CSR solve agrees
//!    with the dense backend within 1e-10 elementwise (`Fp64`), and each
//!    reduced-precision sparse run stays within the *same* documented
//!    envelope as its dense counterpart (1e-4 plain `Fp32`, 1e-6
//!    `Fp32Refined`, vs the `Fp64` dense reference).
//! 2. **Serial/distributed equivalence**: for every cell of the matrix,
//!    scheduler results are bitwise-identical to the serial queue — the
//!    backend decision is a deterministic plan property, identical on
//!    every rank.
//! 3. **Backend-blind plan cache**: the consensus accounting identity
//!    `cache hits + symbolic builds = Σ_jobs group size` holds unchanged
//!    under either backend, and re-running a batch under the *other*
//!    backend on the same engine produces zero new symbolic builds (the
//!    backend provably never enters a fingerprint or cache key).
//! 4. **Filtering stays within its documented tolerance**: a per-iteration
//!    element filter of 1e-8 perturbs the density by < 1e-5 elementwise
//!    while strictly reducing sparse-kernel flops.

use sm_comsim::SerialComm;
use sm_core::engine::{BackendPolicy, NumericOptions};
use sm_core::solver::{SignMethod, SolveBackend, SolveOptions};
use sm_dbcsr::{BlockedDims, DbcsrMatrix};
use sm_linalg::{Matrix, Precision};
use sm_pipeline::{
    EngineOptions, JobOutput, JobQueue, JobResult, MatrixJob, RankBudget, Scheduler,
    SchedulerOutcome, SubmatrixEngine,
};

/// Deterministic banded symmetric matrix with a spectral gap at 0.
fn banded(nb: usize, bs: usize, seed: u64) -> DbcsrMatrix {
    let n = nb * bs;
    let mut dense = Matrix::from_fn(n, n, |i, j| {
        let bi = (i / bs) as isize;
        let bj = (j / bs) as isize;
        if (bi - bj).unsigned_abs() > 1 {
            0.0
        } else if i == j {
            let base = if i % 2 == 0 { 1.2 } else { -1.2 };
            base + ((seed % 7) as f64) * 0.017
        } else {
            0.04 / (1.0 + (i as f64 - j as f64).abs())
        }
    });
    dense.symmetrize();
    DbcsrMatrix::from_dense(&dense, BlockedDims::uniform(nb, bs), 0, 1, 0.0)
}

/// A two-job Newton–Schulz batch under the given backend policy,
/// precision and per-iteration sparse filter (recurring banded patterns,
/// two distinct sizes so the plan cache sees two keys).
fn batch_at(policy: BackendPolicy, precision: Precision, sparse_eps: f64) -> Vec<MatrixJob> {
    let numeric = NumericOptions {
        precision,
        backend: policy,
        solve: SolveOptions {
            method: SignMethod::NewtonSchulz,
            sparse_eps,
            ..SolveOptions::default()
        },
        ..NumericOptions::default()
    };
    vec![
        MatrixJob {
            name: "banded-8/density".into(),
            matrix: banded(8, 2, 3),
            mu0: 0.0,
            numeric,
            output: JobOutput::Density,
        },
        MatrixJob {
            name: "banded-6/sign".into(),
            matrix: banded(6, 2, 5),
            mu0: 0.0,
            numeric,
            output: JobOutput::Sign,
        },
    ]
}

fn dense_results(results: &[JobResult]) -> Vec<Matrix> {
    let comm = SerialComm::new();
    results.iter().map(|r| r.result.to_dense(&comm)).collect()
}

fn fresh_engine() -> std::sync::Arc<SubmatrixEngine> {
    std::sync::Arc::new(SubmatrixEngine::new(EngineOptions {
        parallel: false,
        ..EngineOptions::default()
    }))
}

/// Every rank of every group decides plan-cache hit/miss exactly once per
/// job: `hits + builds = executions = Σ_jobs group size`. The backend must
/// leave this identity untouched.
fn assert_consensus_accounting(outcome: &SchedulerOutcome, engine: &SubmatrixEngine) {
    let expected: usize = (0..outcome.results.len())
        .map(|j| outcome.schedule.ranks_of_job(j).len())
        .sum();
    let stats = engine.stats();
    assert_eq!(
        stats.cache_hits + stats.symbolic_builds,
        expected,
        "plan-cache consensus accounting off: {stats:?}, expected {expected}"
    );
    assert_eq!(stats.executions, expected);
}

#[test]
fn sparse_backend_matches_dense_within_documented_envelopes() {
    let queue = JobQueue::default();
    // Fp64 dense is the reference for every cell of the precision axis.
    let reference = dense_results(&queue.run(batch_at(BackendPolicy::Dense, Precision::Fp64, 0.0)));
    for precision in Precision::all() {
        let dense = dense_results(&queue.run(batch_at(BackendPolicy::Dense, precision, 0.0)));
        let sparse = dense_results(&queue.run(batch_at(BackendPolicy::SparseCsr, precision, 0.0)));
        let tol = match precision {
            // Unfiltered CSR is the same iteration in a different
            // representation: 1e-10 against the dense backend.
            Precision::Fp64 => 1e-10,
            // Reduced precision rounds both backends through the same
            // f32 grid; they may part in roundoff but each must stay in
            // its documented envelope vs the Fp64 reference (asserted
            // below) and near its dense sibling here.
            Precision::Fp32 => 1e-4,
            Precision::Fp32Refined => 1e-6,
        };
        for ((s, d), r) in sparse.iter().zip(&dense).zip(&reference) {
            let cross = s.max_abs_diff(d);
            assert!(
                cross < tol,
                "{precision:?}: sparse deviates from dense by {cross} (tol {tol})"
            );
            let envelope = match precision {
                Precision::Fp64 => 1e-10,
                Precision::Fp32 => 1e-4,
                Precision::Fp32Refined => 1e-6,
            };
            let vs_ref = s.max_abs_diff(r);
            assert!(
                vs_ref < envelope,
                "{precision:?}: sparse backend leaves the documented envelope: {vs_ref}"
            );
        }
    }
    // Sparse jobs actually ran the CSR kernels and reported them.
    let out = queue.run(batch_at(BackendPolicy::SparseCsr, Precision::Fp64, 0.0));
    for r in &out {
        assert_eq!(
            r.report.backend,
            SolveBackend::SparseCsr,
            "job '{}'",
            r.name
        );
        assert!(
            r.report.sparse_flops > 0,
            "job '{}' counted no flops",
            r.name
        );
    }
}

#[test]
fn scheduler_is_bitwise_identical_to_the_serial_queue_in_every_cell() {
    for policy in [BackendPolicy::Dense, BackendPolicy::SparseCsr] {
        for precision in Precision::all() {
            let serial = JobQueue::default().run(batch_at(policy, precision, 0.0));
            let serial_dense = dense_results(&serial);
            for world in [2usize, 4, 6] {
                let engine = fresh_engine();
                let sched = Scheduler::new(engine.clone(), RankBudget::default());
                let outcome = sched.run(world, batch_at(policy, precision, 0.0));
                for ((s, q), sr) in dense_results(&outcome.results)
                    .iter()
                    .zip(&serial_dense)
                    .zip(&serial)
                {
                    assert!(
                        s.allclose(q, 0.0),
                        "{policy:?}/{precision:?} at world {world}: job '{}' deviates bitwise",
                        sr.name
                    );
                }
                // The consensus identity is backend-blind.
                assert_consensus_accounting(&outcome, &engine);
            }
        }
    }
}

#[test]
fn plan_cache_is_blind_to_the_backend() {
    // One engine, both backends: the second sweep must produce zero new
    // symbolic builds — a backend-contaminated fingerprint or cache key
    // would force a rebuild and break this count.
    let queue = JobQueue::default();
    queue.run(batch_at(BackendPolicy::Dense, Precision::Fp64, 0.0));
    let builds_after_dense = queue.engine().stats().symbolic_builds;
    assert_eq!(builds_after_dense, 2, "two distinct patterns");
    queue.run(batch_at(BackendPolicy::SparseCsr, Precision::Fp64, 0.0));
    let stats = queue.engine().stats();
    assert_eq!(
        stats.symbolic_builds, builds_after_dense,
        "switching backend must not rebuild any plan"
    );
    assert_eq!(stats.cache_hits, 2, "sparse sweep reuses both plans");
}

#[test]
fn filtered_sparse_solve_stays_within_tolerance_and_saves_flops() {
    let queue = JobQueue::default();
    let exact = queue.run(batch_at(BackendPolicy::SparseCsr, Precision::Fp64, 0.0));
    let filtered = queue.run(batch_at(BackendPolicy::SparseCsr, Precision::Fp64, 1e-8));
    let exact_dense = dense_results(&exact);
    let filtered_dense = dense_results(&filtered);
    for ((f, e), (fr, er)) in filtered_dense
        .iter()
        .zip(&exact_dense)
        .zip(filtered.iter().zip(&exact))
    {
        let diff = f.max_abs_diff(e);
        assert!(
            diff < 1e-5,
            "job '{}': filter 1e-8 perturbs density by {diff}",
            fr.name
        );
        assert!(
            fr.report.sparse_flops <= er.report.sparse_flops,
            "job '{}': filtering must not add flops",
            fr.name
        );
        assert!(
            fr.report.sparse_filtered_nnz >= er.report.sparse_filtered_nnz,
            "job '{}': filtering must not densify the iterate",
            fr.name
        );
    }
}
