//! Equivalence/property suite for epoch-based work stealing: any steal
//! schedule the epoch planner produces must leave grand-canonical results
//! **bitwise-identical** to the serial [`JobQueue`], a constructed
//! straggler batch must actually steal (and recover idle rank time in the
//! deterministic cost model), and no epoch may ever observe divergent
//! plan-cache consensus — pinned here through the exact accounting
//! identity `cache hits + symbolic builds = Σ_jobs group size` (every
//! rank of every group decides hit/miss exactly once per job; a divergent
//! consensus either deadlocks the group or breaks the identity).

use proptest::prelude::*;

use sm_comsim::SerialComm;
use sm_core::engine::NumericOptions;
use sm_dbcsr::{BlockedDims, DbcsrMatrix};
use sm_linalg::Matrix;
use sm_pipeline::{
    EngineOptions, JobOutput, JobQueue, JobResult, MatrixJob, RankBudget, Scheduler,
    SchedulerOutcome, StealPolicy, SubmatrixEngine,
};

/// Deterministic banded symmetric matrix with a spectral gap at 0.
fn banded(nb: usize, bs: usize, half: usize, seed: u64) -> DbcsrMatrix {
    let n = nb * bs;
    let mut dense = Matrix::from_fn(n, n, |i, j| {
        let bi = (i / bs) as isize;
        let bj = (j / bs) as isize;
        if (bi - bj).unsigned_abs() > half {
            0.0
        } else if i == j {
            let base = if i % 2 == 0 { 1.0 } else { -1.0 };
            base + ((seed % 13) as f64) * 0.011
        } else {
            let w = 0.6 + ((i * 29 + j * 13 + seed as usize) % 7) as f64 / 7.0;
            0.05 * w / (1.0 + (i as f64 - j as f64).abs())
        }
    });
    dense.symmetrize();
    DbcsrMatrix::from_dense(&dense, BlockedDims::uniform(nb, bs), 0, 1, 0.0)
}

/// The acceptance construction: one large job plus many small jobs of one
/// recurring pattern. Under LPT on 6 ranks the large job pins a 3-unit
/// steal horizon while three groups queue ~4 units, so a tail of smalls
/// defers to epoch 1 and runs on re-dealt (stolen) multi-rank groups.
fn straggler_batch(seed: u64) -> Vec<MatrixJob> {
    let mut jobs = vec![MatrixJob::density("large", banded(10, 2, 1, seed), 0.0)];
    for i in 0..18u64 {
        jobs.push(MatrixJob::density(
            format!("small-{i}"),
            banded(4, 2, 1, seed.wrapping_add(i)),
            0.0,
        ));
    }
    jobs
}

fn fresh_engine(capacity: Option<usize>) -> std::sync::Arc<SubmatrixEngine> {
    std::sync::Arc::new(SubmatrixEngine::new(EngineOptions {
        parallel: false,
        plan_cache_capacity: capacity,
        ..EngineOptions::default()
    }))
}

fn assert_bitwise_equal(scheduled: &[JobResult], serial: &[JobResult], what: &str) {
    let comm = SerialComm::new();
    assert_eq!(scheduled.len(), serial.len());
    for (s, q) in scheduled.iter().zip(serial) {
        assert_eq!(s.name, q.name, "submission order broken ({what})");
        assert!(
            s.result
                .to_dense(&comm)
                .allclose(&q.result.to_dense(&comm), 0.0),
            "job '{}' deviates bitwise ({what})",
            s.name
        );
        assert_eq!(s.report.mu, q.report.mu, "job '{}' µ deviates", s.name);
    }
}

/// Every rank of every executing group decides the plan-cache hit/miss
/// consensus exactly once per job, so the engine's counters must satisfy
/// `hits + builds = executions = Σ_jobs group size` — the observable form
/// of "no epoch saw divergent consensus" (divergence deadlocks the group
/// or double-counts a decision).
fn assert_consensus_accounting(outcome: &SchedulerOutcome, engine: &SubmatrixEngine) {
    let expected: usize = (0..outcome.results.len())
        .map(|j| outcome.schedule.ranks_of_job(j).len())
        .sum();
    let stats = engine.stats();
    assert_eq!(
        stats.cache_hits + stats.symbolic_builds,
        expected,
        "plan-cache consensus accounting off: {stats:?}, expected {expected} decisions"
    );
    assert_eq!(stats.executions, expected);
}

// The watchdog lives in the shared test-support module: the epoch
// planner itself is bounded by construction (at most one epoch per job),
// but a buggy schedule must fail loudly rather than hang the harness.
mod common;
use common::with_watchdog;

#[test]
fn straggler_batch_steals_and_matches_queue_bitwise() {
    let jobs = straggler_batch(11);
    let serial = JobQueue::new(fresh_engine(None)).run(jobs.clone());

    let engine = fresh_engine(None);
    let sched = Scheduler::new(engine.clone(), RankBudget::default());
    let outcome = sched.run(6, jobs);

    // The batch actually steals: ≥ 2 epochs, at least one job re-dealt
    // onto foreign ranks, and the deterministic cost model shows the
    // re-deal flattening the worst rank's idle time versus the static
    // schedule.
    let stats = &outcome.steal_stats;
    assert!(
        stats.epochs >= 2,
        "straggler batch stayed single-epoch: {stats:?}"
    );
    assert!(stats.stolen_jobs >= 1, "no job was stolen: {stats:?}");
    assert!(stats.stolen_ranks >= stats.stolen_jobs);
    assert!(
        stats.est_max_rank_idle_epochs < stats.est_max_rank_idle_static,
        "stealing must lower the max-rank idle estimate: {stats:?}"
    );
    assert!(stats.est_idle_cost_recovered() > 0.0, "{stats:?}");

    // Per-job steal attribution is consistent: stolen jobs ran in a later
    // epoch, on the group the schedule says, and the schedule's own
    // planned counters match what the results report.
    let reported_stolen: usize = outcome.results.iter().map(|r| r.stolen_ranks).sum();
    assert_eq!(reported_stolen, stats.stolen_ranks);
    for (j, r) in outcome.results.iter().enumerate() {
        assert_eq!(r.epoch, outcome.schedule.job_epoch[j]);
        assert_eq!(r.stolen_ranks, outcome.schedule.job_stolen_ranks[j]);
        assert_eq!(r.group_size, outcome.schedule.ranks_of_job(j).len());
        if r.was_stolen() {
            assert!(r.epoch >= 1, "epoch-0 groups are the static groups");
        }
    }

    // The heart of the PR: any steal schedule is bitwise-invisible in the
    // results.
    assert_bitwise_equal(&outcome.results, &serial, "stealing vs serial queue");
    assert_consensus_accounting(&outcome, &engine);
}

#[test]
fn disabled_policy_is_static_and_agrees_bitwise() {
    let jobs = straggler_batch(23);
    let serial = JobQueue::new(fresh_engine(None)).run(jobs.clone());

    let engine = fresh_engine(None);
    let sched =
        Scheduler::new(engine.clone(), RankBudget::default()).with_policy(StealPolicy::Disabled);
    let outcome = sched.run(6, jobs);

    assert_eq!(outcome.steal_stats.epochs, 1);
    assert_eq!(outcome.steal_stats.stolen_jobs, 0);
    assert_eq!(outcome.steal_stats.est_idle_cost_recovered(), 0.0);
    for r in &outcome.results {
        assert_eq!(r.epoch, 0);
        assert!(!r.was_stolen());
    }
    assert_bitwise_equal(&outcome.results, &serial, "static policy vs serial queue");
    assert_consensus_accounting(&outcome, &engine);
}

#[test]
fn stealing_and_static_schedules_agree_bitwise_at_many_world_sizes() {
    // The same straggler batch across world sizes, stealing on vs off:
    // the schedule may differ arbitrarily, the bits may not.
    let jobs = straggler_batch(5);
    let serial = JobQueue::new(fresh_engine(None)).run(jobs.clone());
    for world in [1usize, 2, 4, 6, 9] {
        for policy in [StealPolicy::EpochRebalance, StealPolicy::Disabled] {
            let engine = fresh_engine(None);
            let sched = Scheduler::new(engine.clone(), RankBudget::default()).with_policy(policy);
            let outcome = sched.run(world, jobs.clone());
            assert_bitwise_equal(
                &outcome.results,
                &serial,
                &format!("world {world}, policy {policy:?}"),
            );
            assert_consensus_accounting(&outcome, &engine);
        }
    }
}

#[test]
fn no_epoch_observes_divergent_consensus_under_bounded_cache() {
    // Hostile cache pressure: capacity 1 under a multi-epoch steal
    // schedule whose later epochs run multi-rank groups. A divergent
    // hit/miss consensus would deadlock a group inside the collective
    // pattern gather (caught by the watchdog) or break the accounting
    // identity; neither may happen, and the results stay bitwise equal.
    let (outcome, engine_stats, cached, serial) = with_watchdog(240, || {
        let jobs = straggler_batch(7);
        let serial = JobQueue::new(fresh_engine(None)).run(jobs.clone());
        let engine = fresh_engine(Some(1));
        let sched = Scheduler::new(engine.clone(), RankBudget::default());
        let outcome = sched.run(6, jobs);
        (outcome, engine.stats(), engine.cached_plans(), serial)
    });
    assert!(outcome.steal_stats.epochs >= 2);
    assert_bitwise_equal(&outcome.results, &serial, "capacity-1 cache with stealing");
    let expected: usize = (0..outcome.results.len())
        .map(|j| outcome.schedule.ranks_of_job(j).len())
        .sum();
    assert_eq!(
        engine_stats.cache_hits + engine_stats.symbolic_builds,
        expected
    );
    assert!(cached <= 1, "bounded cache overflowed: {cached} plans");
}

#[test]
fn tracing_is_non_perturbing_and_span_trees_are_deterministic() {
    // The observability acceptance gate: running the exact straggler
    // batch with every span and metric live must (a) leave the results
    // bitwise-identical to the serial queue and (b) produce the same
    // logical span tree on every rerun at a fixed world size — the tree
    // is built from logical clocks and perfmodel costs only, so wall-time
    // jitter and thread interleaving cannot show up in it.
    let jobs = straggler_batch(11);
    let serial = JobQueue::new(fresh_engine(None)).run(jobs.clone());

    let run_traced = |label: &'static str| {
        let session = sm_trace::TraceSession::start(label);
        let engine = fresh_engine(None);
        let sched = Scheduler::new(engine.clone(), RankBudget::default()).with_trace_label(label);
        let outcome = sched.run(6, jobs.clone());
        assert_bitwise_equal(&outcome.results, &serial, label);
        assert_consensus_accounting(&outcome, &engine);
        session.span_tree_under(&format!("batch:{label}"))
    };

    let first = run_traced("steal-trace-a");
    // Hierarchy spot-checks: the tree nests epoch/group/job/phase and
    // carries the scheduler narration plus the engine's per-phase events.
    assert!(first.contains("epoch:0/"), "missing epoch level:\n{first}");
    assert!(
        first.contains("epoch:1/"),
        "straggler batch must reach epoch 1"
    );
    assert!(first.contains("/group:"), "missing group level:\n{first}");
    assert!(first.contains("/job:"), "missing job level:\n{first}");
    assert!(
        first.contains("/phase:solve"),
        "missing engine phases:\n{first}"
    );
    assert!(
        first.contains("plan.decision"),
        "missing plan consensus events"
    );
    assert!(
        first.contains("job.done"),
        "missing per-job completion events"
    );
    assert!(first.contains("sched.steal"), "missing steal narration");

    let second = run_traced("steal-trace-b");
    let relabeled = |tree: &str, label: &str| tree.replace(&format!("batch:{label}"), "batch:#");
    assert_eq!(
        relabeled(&first, "steal-trace-a"),
        relabeled(&second, "steal-trace-b"),
        "span tree must be deterministic across reruns"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random sparsity patterns, world sizes and skewed job-cost mixes:
    /// whatever epoch/steal schedule falls out, grand-canonical batches
    /// are bitwise-identical to the serial queue and the consensus
    /// accounting holds.
    #[test]
    fn random_skewed_batches_match_serial_queue_bitwise(
        nb_large in 6usize..10,
        n_small in 5usize..9,
        bs in 1usize..3,
        half in 1usize..3,
        seed in 0u64..1000,
        world in 2usize..7,
    ) {
        let mut jobs = vec![MatrixJob {
            name: "large".into(),
            matrix: banded(nb_large, bs, half, seed),
            mu0: 0.02,
            numeric: NumericOptions::default(),
            output: JobOutput::Sign,
        }];
        for i in 0..n_small as u64 {
            jobs.push(MatrixJob::density(
                format!("small-{i}"),
                banded(3 + (i as usize % 3), bs, 1, seed.wrapping_add(i)),
                0.0,
            ));
        }
        let serial = JobQueue::new(fresh_engine(None)).run(jobs.clone());
        let engine = fresh_engine(None);
        let sched = Scheduler::new(engine.clone(), RankBudget::default());
        let outcome = sched.run(world, jobs);

        // Schedule sanity: every job runs exactly once, in its recorded
        // epoch, and the per-job steal attribution matches the plan.
        let comm = SerialComm::new();
        for (j, (s, q)) in outcome.results.iter().zip(&serial).enumerate() {
            prop_assert_eq!(&s.name, &q.name);
            prop_assert!(
                s.result.to_dense(&comm).allclose(&q.result.to_dense(&comm), 0.0),
                "job '{}' deviates at world {} (epochs {})",
                s.name, world, outcome.steal_stats.epochs
            );
            prop_assert_eq!(s.epoch, outcome.schedule.job_epoch[j]);
            prop_assert_eq!(s.stolen_ranks, outcome.schedule.job_stolen_ranks[j]);
        }
        let scheduled: usize = outcome
            .schedule
            .epochs
            .iter()
            .flat_map(|e| e.groups.iter())
            .map(|g| g.jobs.len())
            .sum();
        prop_assert_eq!(scheduled, outcome.results.len());
        let expected: usize = (0..outcome.results.len())
            .map(|j| outcome.schedule.ranks_of_job(j).len())
            .sum();
        let stats = engine.stats();
        prop_assert_eq!(stats.cache_hits + stats.symbolic_builds, expected);
    }
}
