//! Offline drop-in subset of `crossbeam`: unbounded MPSC channels.
//!
//! Backed by [`std::sync::mpsc`]; only the `channel::{unbounded, Sender,
//! Receiver}` surface used by `sm-comsim`'s rank-per-thread communicator is
//! provided.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side has hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when all senders have hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`]: either the deadline
    /// elapsed with no message, or every sender hung up (these must stay
    /// distinguishable — a timeout may be retried, a disconnect never
    /// delivers again).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// All senders are gone; no message can ever arrive.
        Disconnected,
    }

    /// Sending half of an unbounded channel (cloneable).
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only if the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives; fails once all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.0.try_recv().map_err(|_| RecvError)
        }

        /// Block until a message arrives or `timeout` elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (s, r) = mpsc::channel();
        (Sender(s), Receiver(r))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn send_recv_roundtrip() {
        let (s, r) = unbounded();
        s.send(41).unwrap();
        s.clone().send(42).unwrap();
        assert_eq!(r.recv().unwrap(), 41);
        assert_eq!(r.recv().unwrap(), 42);
    }

    #[test]
    fn recv_fails_after_senders_drop() {
        let (s, r) = unbounded::<u8>();
        drop(s);
        assert!(r.recv().is_err());
    }

    #[test]
    fn recv_timeout_distinguishes_timeout_from_disconnect() {
        use super::channel::RecvTimeoutError;
        use std::time::Duration;
        let (s, r) = unbounded::<u8>();
        assert_eq!(
            r.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        s.send(7).unwrap();
        assert_eq!(r.recv_timeout(Duration::from_millis(1)), Ok(7));
        drop(s);
        assert_eq!(
            r.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
