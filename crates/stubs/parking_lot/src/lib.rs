//! Offline drop-in subset of `parking_lot`: a poison-free `Mutex`.
//!
//! Wraps [`std::sync::Mutex`] and swallows poisoning (parking_lot has no
//! poisoning), exposing the `lock()`-returns-guard API the workspace uses.

use std::sync::MutexGuard;

/// Mutual exclusion primitive with parking_lot's non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn default_is_inner_default() {
        let m: Mutex<Vec<u8>> = Mutex::default();
        assert!(m.lock().is_empty());
    }
}
