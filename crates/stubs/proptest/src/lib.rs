//! Offline drop-in subset of the `proptest` API.
//!
//! Implements exactly the surface this workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`), range and
//! [`collection::vec`] strategies, [`strategy::Strategy::prop_map`], and
//! the `prop_assert!`/`prop_assert_eq!` macros. Cases are generated from a
//! deterministic per-test RNG (seeded by the test name), so failures are
//! reproducible; shrinking is not implemented — the failing inputs are
//! reported as-is.

pub mod test_runner {
    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Failure raised by `prop_assert!`-family macros.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-test random source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from the test name so every test gets a stable stream.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.sample(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, u8);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + (rng.next_u64() % span) as i64) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i64, i32);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.next_unit_f64() as $t;
                    self.start + u * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f64, f32);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Fixed-length vector of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, count: usize) -> VecStrategy<S> {
        VecStrategy { element, count }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        count: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.count).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Run each contained `#[test]` function over many sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest '{}' failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside a proptest body, failing the case (not panicking directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        if !(*__lhs == *__rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($lhs),
                    stringify!($rhs),
                    __lhs,
                    __rhs
                ),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        if !(*__lhs == *__rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y), "y = {y} escaped");
        }

        #[test]
        fn vec_strategy_has_requested_length(n in 1usize..9) {
            let v = crate::strategy::Strategy::sample(
                &crate::collection::vec(0.0f64..1.0, n * 2),
                &mut TestRng::from_name("inner"),
            );
            prop_assert_eq!(v.len(), n * 2);
        }
    }

    #[test]
    fn prop_map_applies() {
        let s = (0u64..10).prop_map(|x| x * 3);
        let mut rng = TestRng::from_name("map");
        for _ in 0..20 {
            let v = s.sample(&mut rng);
            assert_eq!(v % 3, 0);
            assert!(v < 30);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("same");
        let mut b = TestRng::from_name("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
