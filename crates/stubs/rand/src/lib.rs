//! Offline drop-in subset of the `rand` API.
//!
//! Provides the `Rng`/`SeedableRng` traits and uniform range sampling used
//! by `sm-chem`'s water-box generator. Generators live in the companion
//! `rand_chacha` stub. Determinism (same seed, same stream) is the only
//! guarantee the workspace relies on; statistical quality is provided by a
//! 64-bit xorshift*-class generator rather than real ChaCha.

use std::ops::Range;

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling interface (blanket-implemented for every generator).
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform value in `[0, 1)`.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as `gen_range` arguments.
pub trait SampleRange {
    /// Sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as usize
    }
}
