//! Offline drop-in for `rand_chacha`'s `ChaCha8Rng`.
//!
//! The workspace needs a deterministic, seedable, decent-quality stream —
//! not ChaCha's cryptographic properties — so this stub implements
//! xoshiro256** seeded through SplitMix64 under the familiar name.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator (xoshiro256**, not real ChaCha).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        ChaCha8Rng { s }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(-0.15..0.15);
            assert!((-0.15..0.15).contains(&x));
        }
    }
}
