//! Offline drop-in subset of the `rayon` API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal data-parallelism shim exposing exactly the surface the
//! codebase uses: `par_iter().map(..).collect()`, `par_chunks_mut(..)
//! .enumerate().for_each(..)`, and a shared implicit thread pool sized by
//! [`std::thread::available_parallelism`]. Work is distributed dynamically
//! (an atomic work index, one OS thread per core) and results preserve
//! input order, matching rayon's observable semantics for these adaptors.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, ParallelIterator};
    pub use crate::slice::ParallelSliceMut;
}

/// Number of worker threads of the implicit pool.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Order-preserving parallel map over owned items with dynamic scheduling.
fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("slot taken twice");
                let out = f(item);
                *results[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("worker skipped a slot")
        })
        .collect()
}

pub mod iter {
    use super::parallel_map;

    /// A parallel iterator: a finite sequence whose per-item work runs on
    /// the implicit pool when a terminal adaptor drives it.
    pub trait ParallelIterator: Sized + Send {
        /// Item type produced by this iterator.
        type Item: Send;

        /// Materialize all items in order. Adaptors that carry user
        /// closures (e.g. [`Map`]) apply them in parallel here.
        fn drive(self) -> Vec<Self::Item>;

        /// Map every item through `f` on the pool.
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync + Send,
        {
            Map { base: self, f }
        }

        /// Pair every item with its index.
        fn enumerate(self) -> Enumerate<Self> {
            Enumerate { base: self }
        }

        /// Run `f` on every item (parallel, unordered effects).
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync + Send,
        {
            self.map(f).drive();
        }

        /// Collect all items in input order.
        fn collect<C: From<Vec<Self::Item>>>(self) -> C {
            C::from(self.drive())
        }
    }

    /// Borrowing conversion into a parallel iterator (`par_iter`).
    pub trait IntoParallelRefIterator<'a> {
        /// Item type (a shared reference).
        type Item: Send + 'a;
        /// The iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Parallel counterpart of `[T]::iter`.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = ParIter<'a, T>;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = ParIter<'a, T>;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    /// Parallel iterator over shared slice references.
    pub struct ParIter<'a, T> {
        items: &'a [T],
    }

    impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
        type Item = &'a T;
        fn drive(self) -> Vec<&'a T> {
            self.items.iter().collect()
        }
    }

    /// Mapped parallel iterator (the stage that runs user code).
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    impl<I, R, F> ParallelIterator for Map<I, F>
    where
        I: ParallelIterator,
        R: Send,
        F: Fn(I::Item) -> R + Sync + Send,
    {
        type Item = R;
        fn drive(self) -> Vec<R> {
            parallel_map(self.base.drive(), self.f)
        }
    }

    /// Index-pairing adaptor.
    pub struct Enumerate<I> {
        base: I,
    }

    impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
        type Item = (usize, I::Item);
        fn drive(self) -> Vec<(usize, I::Item)> {
            self.base.drive().into_iter().enumerate().collect()
        }
    }
}

pub mod slice {
    use crate::iter::ParallelIterator;

    /// Parallel counterpart of mutable slice splitting.
    pub trait ParallelSliceMut<T: Send> {
        /// Parallel counterpart of `chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunksMut {
                slice: self,
                chunk_size,
            }
        }
    }

    /// Parallel iterator over disjoint mutable chunks.
    pub struct ParChunksMut<'a, T> {
        slice: &'a mut [T],
        chunk_size: usize,
    }

    impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
        type Item = &'a mut [T];
        fn drive(self) -> Vec<&'a mut [T]> {
            self.slice.chunks_mut(self.chunk_size).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_enumerate_for_each() {
        let mut v = vec![0usize; 12];
        v.as_mut_slice()
            .par_chunks_mut(3)
            .enumerate()
            .for_each(|(j, chunk)| {
                for c in chunk.iter_mut() {
                    *c = j;
                }
            });
        assert_eq!(v, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn empty_and_single_item() {
        let v: Vec<i32> = Vec::new();
        let out: Vec<i32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7];
        let out: Vec<i32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
