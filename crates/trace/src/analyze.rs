//! Trace analysis: span-forest reconstruction, per-epoch **critical
//! path**, per-rank idle attribution, and model-vs-measured phase skew.
//!
//! The raw `TRACE_*.jsonl` stream (one line per event/metric) is enough
//! to answer the operational questions PR 6 left open — *which job chain
//! bounds an epoch*, *which ranks idle how long*, *how wrong is the
//! perfmodel per phase* — but nobody wants to read JSONL by hand. This
//! module parses a trace back into a [`TraceDoc`], reconstructs the
//! epoch/group/job schedule from the scheduler's narration events
//! (`sched.epoch` / `sched.queue` / `sched.job`), and computes:
//!
//! * [`critical_path`] — the longest chain of job executions through the
//!   epoch barriers, in **perfmodel cost units** (deterministic: a pure
//!   function of the schedule narration, so [`CriticalPath::render`] is
//!   bit-identical across reruns and safe to assert on) and in wall-clock
//!   seconds (annotation only, per the two-clock rule);
//! * [`idle_attribution`] — per-rank idle time in cost units (from the
//!   schedule) and measured busy/wall seconds (from `rank.idle` events);
//! * [`phase_samples`] / [`job_phase_skew`] — `(cost, wall)` sample pairs
//!   per engine phase (gather/solve/scatter), the raw material for the
//!   `sm_accel::perfmodel` calibration fitter and for per-job skew
//!   reports ("this job ran 3× slower per cost unit than the batch").
//!
//! ## The barrier model
//!
//! Within an epoch each group executes its committed queue sequentially;
//! between epochs the scheduler re-splits the **world** communicator, a
//! collective every rank joins — a barrier. The dependency forest is
//! therefore: job `k+1` of a group's queue depends on job `k`, and every
//! job of epoch `e+1` depends on all of epoch `e`. The critical path is
//! the concatenation, over epochs, of the longest group chain, where a
//! job's cost-unit duration is `cost / ranks` (the same convention as
//! `sm_pipeline::sched::steal_horizon`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::Json;
use crate::{Metric, TraceSession, TRACE_SCHEMA_VERSION};

/// Failure while parsing or analyzing a trace. The variants matter to
/// `smdoctor`'s exit-code discipline: input problems (missing/empty/
/// malformed files) are usage errors, schema mismatches are drift.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The trace file has no lines at all.
    Empty,
    /// The header line is missing, malformed, or not an `sm-trace` header.
    BadHeader(String),
    /// The header speaks a different [`TRACE_SCHEMA_VERSION`].
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this analyzer speaks.
        expected: u32,
    },
    /// A record line failed to parse (1-based line number).
    Line {
        /// 1-based line number in the file.
        line: usize,
        /// Parser message.
        msg: String,
    },
    /// The trace carries no scheduler narration to reconstruct from
    /// (traced outside a scheduler run, or a pre-v2 trace without
    /// `sched.job` events).
    NoSchedule(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Empty => write!(f, "empty trace file"),
            TraceError::BadHeader(msg) => write!(f, "bad trace header: {msg}"),
            TraceError::VersionMismatch { found, expected } => write!(
                f,
                "trace schema version mismatch: file is v{found}, analyzer speaks v{expected}"
            ),
            TraceError::Line { line, msg } => write!(f, "line {line}: {msg}"),
            TraceError::NoSchedule(msg) => write!(f, "no schedule narration: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// One parsed trace event (owned twin of [`crate::Event`], produced by
/// [`TraceDoc::parse`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RecEvent {
    /// Span path the event was emitted under.
    pub path: String,
    /// Event name (`sched.queue`, `engine.phase`, ...).
    pub name: String,
    /// Per-thread logical sequence number.
    pub seq: u64,
    /// Deterministic logical cost (perfmodel units / planned bytes).
    pub cost: f64,
    /// Wall-time annotation in seconds.
    pub wall_s: f64,
    /// Auxiliary numeric fields.
    pub fields: Vec<(String, f64)>,
}

impl RecEvent {
    /// Auxiliary field by name (0.0 when absent).
    pub fn field(&self, key: &str) -> f64 {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    }
}

/// One parsed metric line (value semantics depend on `kind`; histograms
/// keep only count and sum — buckets are not needed by the analyzers).
#[derive(Debug, Clone, PartialEq)]
pub struct RecMetric {
    /// Metric key (span-scoped).
    pub name: String,
    /// Kind label (`counter`, `gauge`, `bytes_hist`, `seconds_hist`).
    pub kind: String,
    /// Counter/gauge value, or the histogram sum.
    pub value: f64,
    /// Histogram sample count (0 for counters/gauges).
    pub count: u64,
}

/// A parsed trace: the header fields plus every event and metric, in
/// file order. Obtained from [`TraceDoc::parse`] (an exported JSONL
/// stream) or [`TraceDoc::from_session`] (a live [`TraceSession`]).
#[derive(Debug, Clone, Default)]
pub struct TraceDoc {
    /// Session label from the header.
    pub label: String,
    /// Schema version from the header.
    pub version: u32,
    /// All events, in file/arrival order (not deterministic across rank
    /// threads — analyzers sort by deterministic keys).
    pub events: Vec<RecEvent>,
    /// All metrics, sorted by key (the exporter writes them sorted).
    pub metrics: Vec<RecMetric>,
}

impl TraceDoc {
    /// Parse an exported JSONL trace stream (see
    /// [`TraceSession::write_jsonl`]). Rejects foreign header versions
    /// with [`TraceError::VersionMismatch`].
    pub fn parse(text: &str) -> Result<TraceDoc, TraceError> {
        let mut lines = text.lines();
        let header_line = lines.next().ok_or(TraceError::Empty)?;
        let header = Json::parse(header_line).map_err(TraceError::BadHeader)?;
        if header.get("schema").and_then(Json::as_str) != Some("sm-trace") {
            return Err(TraceError::BadHeader(
                "not an sm-trace header (missing \"schema\":\"sm-trace\")".into(),
            ));
        }
        let version = header
            .get("version")
            .and_then(Json::as_f64)
            .ok_or_else(|| TraceError::BadHeader("missing version".into()))?
            as u32;
        if version != TRACE_SCHEMA_VERSION {
            return Err(TraceError::VersionMismatch {
                found: version,
                expected: TRACE_SCHEMA_VERSION,
            });
        }
        let label = header
            .get("label")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();

        let mut doc = TraceDoc {
            label,
            version,
            events: Vec::new(),
            metrics: Vec::new(),
        };
        for (i, line) in lines.enumerate() {
            let lineno = i + 2;
            let rec = Json::parse(line).map_err(|msg| TraceError::Line { line: lineno, msg })?;
            let num = |key: &str| rec.get(key).and_then(Json::as_f64).unwrap_or(0.0);
            match rec.get("type").and_then(Json::as_str) {
                Some("event") => doc.events.push(RecEvent {
                    path: rec
                        .get("path")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                    name: rec
                        .get("name")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                    seq: num("seq") as u64,
                    cost: num("cost"),
                    wall_s: num("wall_s"),
                    fields: rec
                        .get("fields")
                        .and_then(Json::as_obj)
                        .map(|pairs| {
                            pairs
                                .iter()
                                .map(|(k, v)| (k.clone(), v.as_f64().unwrap_or(0.0)))
                                .collect()
                        })
                        .unwrap_or_default(),
                }),
                Some("metric") => doc.metrics.push(RecMetric {
                    name: rec
                        .get("name")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                    kind: rec
                        .get("kind")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                    value: rec
                        .get("value")
                        .and_then(Json::as_f64)
                        .unwrap_or_else(|| num("sum")),
                    count: num("count") as u64,
                }),
                other => {
                    return Err(TraceError::Line {
                        line: lineno,
                        msg: format!("unknown record type {other:?}"),
                    })
                }
            }
        }
        Ok(doc)
    }

    /// Snapshot a live session into the analyzer representation.
    pub fn from_session(session: &TraceSession) -> TraceDoc {
        let events = session
            .events()
            .into_iter()
            .map(|ev| RecEvent {
                path: ev.path,
                name: ev.name.to_string(),
                seq: ev.seq,
                cost: ev.cost,
                wall_s: ev.wall_s,
                fields: ev
                    .fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            })
            .collect();
        let metrics = session
            .metrics()
            .into_iter()
            .map(|(name, m)| match m {
                Metric::Counter(c) => RecMetric {
                    name,
                    kind: "counter".into(),
                    value: c as f64,
                    count: 0,
                },
                Metric::Gauge(g) => RecMetric {
                    name,
                    kind: "gauge".into(),
                    value: g,
                    count: 0,
                },
                Metric::BytesHistogram(h) => RecMetric {
                    name,
                    kind: "bytes_hist".into(),
                    value: h.sum,
                    count: h.count,
                },
                Metric::SecondsHistogram(h) => RecMetric {
                    name,
                    kind: "seconds_hist".into(),
                    value: h.sum,
                    count: h.count,
                },
            })
            .collect();
        TraceDoc {
            label: session.label().to_string(),
            version: TRACE_SCHEMA_VERSION,
            events,
            metrics,
        }
    }

    /// The batch labels present in the document (from `batch:` roots of
    /// scheduler narration events), sorted.
    pub fn batch_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = self
            .events
            .iter()
            .filter(|e| e.name.starts_with("sched."))
            .filter_map(|e| path_seg(&e.path, "batch").map(str::to_string))
            .collect();
        labels.sort();
        labels.dedup();
        labels
    }
}

/// Extract the value of a `kind:` segment from a span path
/// (`path_seg("batch:svc/epoch:2", "epoch") == Some("2")`).
pub fn path_seg<'p>(path: &'p str, kind: &str) -> Option<&'p str> {
    path.split('/').find_map(|seg| {
        seg.strip_prefix(kind)
            .and_then(|rest| rest.strip_prefix(':'))
    })
}

fn path_idx(path: &str, kind: &str) -> Option<usize> {
    path_seg(path, kind).and_then(|v| v.parse().ok())
}

/// One job execution reconstructed from the schedule narration.
#[derive(Debug, Clone, PartialEq)]
pub struct JobExec {
    /// Job submission index.
    pub job: usize,
    /// Epoch it executed in.
    pub epoch: usize,
    /// Group index within the epoch.
    pub group: usize,
    /// Position in the group's committed queue.
    pub pos: usize,
    /// Estimated job cost (perfmodel units; whole job, all ranks).
    pub cost: f64,
    /// Ranks of the executing group.
    pub ranks: usize,
    /// Measured wall seconds (max over the group's per-rank `job.done`
    /// reports; 0 when the trace has no `job.done` events). Annotation
    /// only.
    pub wall_s: f64,
    /// Ranks outside the job's static home group (0 = not stolen).
    pub stolen_ranks: usize,
}

impl JobExec {
    /// Cost-unit duration of this execution: `cost / ranks` — the same
    /// convention as the scheduler's steal horizon.
    pub fn duration_units(&self) -> f64 {
        self.cost / self.ranks.max(1) as f64
    }
}

/// One group of one epoch, reconstructed from `sched.queue`/`sched.job`.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupExec {
    /// Group index within the epoch.
    pub group: usize,
    /// First world rank of the group.
    pub rank_start: usize,
    /// Number of ranks.
    pub ranks: usize,
    /// Committed estimated cost of the group's queue.
    pub est_cost: f64,
    /// The committed queue, in execution order (job submission indices).
    pub jobs: Vec<usize>,
}

/// The reconstructed epoch/group/job schedule of one traced batch.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    /// Batch label the schedule was reconstructed under.
    pub label: String,
    /// Groups per epoch, in epoch order (group order by index).
    pub epochs: Vec<Vec<GroupExec>>,
    /// Every job execution, keyed by submission index.
    pub jobs: BTreeMap<usize, JobExec>,
    /// World size (ranks covered by epoch 0's groups).
    pub world_size: usize,
}

/// Reconstruct the schedule of the batch labelled `label` (or the only
/// traced batch when `None`) from the scheduler narration events.
pub fn reconstruct(doc: &TraceDoc, label: Option<&str>) -> Result<Schedule, TraceError> {
    let label = match label {
        Some(l) => l.to_string(),
        None => {
            let labels = doc.batch_labels();
            match labels.as_slice() {
                [] => {
                    return Err(TraceError::NoSchedule(
                        "no sched.* events in the trace".into(),
                    ))
                }
                [one] => one.clone(),
                many => {
                    return Err(TraceError::NoSchedule(format!(
                        "multiple traced batches {many:?}; pick one"
                    )))
                }
            }
        }
    };
    let root = format!("batch:{label}/");

    // sched.queue gives each (epoch, group) its rank range and committed
    // cost; sched.job (one per queued job, in queue order) the per-job
    // cost/ranks/steal attribution. Both are emitted by the caller thread
    // before execution, so they are pure functions of the schedule.
    let mut epochs: BTreeMap<usize, BTreeMap<usize, GroupExec>> = BTreeMap::new();
    let mut queue_jobs: BTreeMap<(usize, usize), Vec<(usize, JobExec)>> = BTreeMap::new();
    for ev in &doc.events {
        if !ev.path.starts_with(&root) {
            continue;
        }
        let (Some(e), Some(g)) = (path_idx(&ev.path, "epoch"), path_idx(&ev.path, "group")) else {
            continue;
        };
        match ev.name.as_str() {
            "sched.queue" => {
                epochs.entry(e).or_default().insert(
                    g,
                    GroupExec {
                        group: g,
                        rank_start: ev.field("rank_start") as usize,
                        ranks: (ev.field("ranks") as usize).max(1),
                        est_cost: ev.cost,
                        jobs: Vec::new(),
                    },
                );
            }
            "sched.job" => {
                let pos = ev.field("pos") as usize;
                queue_jobs.entry((e, g)).or_default().push((
                    pos,
                    JobExec {
                        job: ev.field("job") as usize,
                        epoch: e,
                        group: g,
                        pos,
                        cost: ev.cost,
                        ranks: (ev.field("ranks") as usize).max(1),
                        wall_s: 0.0,
                        stolen_ranks: ev.field("stolen_ranks") as usize,
                    },
                ));
            }
            _ => {}
        }
    }
    if epochs.is_empty() {
        return Err(TraceError::NoSchedule(format!(
            "no sched.queue events under batch:{label}"
        )));
    }
    if queue_jobs.is_empty()
        && epochs
            .values()
            .any(|gs| gs.values().any(|g| g.est_cost > 0.0))
    {
        return Err(TraceError::NoSchedule(
            "no sched.job events (pre-v2 trace?) — cannot order group queues".into(),
        ));
    }

    // Wall annotations: the max over the group's per-rank job.done events.
    let mut job_wall: BTreeMap<usize, f64> = BTreeMap::new();
    for ev in &doc.events {
        if ev.name == "job.done" && ev.path.starts_with(&root) {
            if let Some(j) = path_idx(&ev.path, "job") {
                let slot = job_wall.entry(j).or_insert(0.0);
                *slot = slot.max(ev.wall_s);
            }
        }
    }

    let mut schedule = Schedule {
        label,
        epochs: Vec::new(),
        jobs: BTreeMap::new(),
        world_size: 0,
    };
    for (e, groups) in &epochs {
        let mut level: Vec<GroupExec> = Vec::new();
        for (g, mut grp) in groups.clone() {
            let mut queued = queue_jobs.remove(&(*e, g)).unwrap_or_default();
            queued.sort_by_key(|(pos, _)| *pos);
            for (_, mut je) in queued {
                je.wall_s = job_wall.get(&je.job).copied().unwrap_or(0.0);
                grp.jobs.push(je.job);
                schedule.jobs.insert(je.job, je);
            }
            level.push(grp);
        }
        if *e == 0 {
            schedule.world_size = level
                .iter()
                .map(|g| g.rank_start + g.ranks)
                .max()
                .unwrap_or(0);
        }
        schedule.epochs.push(level);
    }
    Ok(schedule)
}

/// One step of the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// Job submission index.
    pub job: usize,
    /// Cost-unit duration (`cost / ranks`; deterministic).
    pub units: f64,
    /// Measured wall seconds (annotation only).
    pub wall_s: f64,
    /// Ranks the job executed on.
    pub ranks: usize,
    /// Ranks stolen from other groups (0 = none).
    pub stolen_ranks: usize,
}

/// The critical chain through one epoch: the group whose committed queue
/// bounds the epoch, with its jobs in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochCritical {
    /// Epoch index.
    pub epoch: usize,
    /// Bounding group index.
    pub group: usize,
    /// Ranks of the bounding group.
    pub ranks: usize,
    /// Cost-unit length of the chain (deterministic).
    pub units: f64,
    /// Wall-clock length of the chain in seconds (annotation only).
    pub wall_s: f64,
    /// The chain's jobs.
    pub steps: Vec<PathStep>,
}

/// The critical path of one traced batch: the longest chain of job
/// executions through the epoch barriers. Cost-unit figures are
/// deterministic (assertable); wall figures are annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Batch label.
    pub label: String,
    /// World size of the traced run.
    pub world_size: usize,
    /// Per-epoch critical chains, in epoch order.
    pub epochs: Vec<EpochCritical>,
    /// Total cost-unit length (Σ over epochs; deterministic).
    pub total_units: f64,
    /// Total wall seconds along the path (annotation only).
    pub total_wall_s: f64,
    /// The job contributing the largest single cost-unit step on the
    /// path — the straggler that bounds the batch.
    pub straggler_job: Option<usize>,
    /// That job's cost-unit duration.
    pub straggler_units: f64,
}

impl CriticalPath {
    /// Deterministic rendering: epochs, bounding groups, job chains and
    /// cost-unit durations only — no wall-clock values — so two traced
    /// reruns of the same schedule render **bit-identically** (pinned by
    /// the `critical_path` test suite).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical path [batch:{}] world={} epochs={} total={:.6e} units",
            self.label,
            self.world_size,
            self.epochs.len(),
            self.total_units
        );
        for e in &self.epochs {
            let _ = writeln!(
                out,
                "  epoch {} bound by group {} ({} rank(s)): {:.6e} units over {} job(s)",
                e.epoch,
                e.group,
                e.ranks,
                e.units,
                e.steps.len()
            );
            for s in &e.steps {
                let stolen = if s.stolen_ranks > 0 {
                    format!(" stolen_ranks={}", s.stolen_ranks)
                } else {
                    String::new()
                };
                let _ = writeln!(
                    out,
                    "    job {} {:.6e} units on {} rank(s){stolen}",
                    s.job, s.units, s.ranks
                );
            }
        }
        match self.straggler_job {
            Some(j) => {
                let _ = writeln!(
                    out,
                    "  straggler: job {} ({:.6e} of {:.6e} units on the path)",
                    j, self.straggler_units, self.total_units
                );
            }
            None => {
                let _ = writeln!(out, "  straggler: none (empty path)");
            }
        }
        out
    }
}

/// Compute the critical path of the batch labelled `label` (or the only
/// traced batch when `None`). See the module docs for the barrier model.
pub fn critical_path(doc: &TraceDoc, label: Option<&str>) -> Result<CriticalPath, TraceError> {
    let schedule = reconstruct(doc, label)?;
    critical_path_of(&schedule)
}

/// [`critical_path`] over an already-reconstructed [`Schedule`].
pub fn critical_path_of(schedule: &Schedule) -> Result<CriticalPath, TraceError> {
    let mut cp = CriticalPath {
        label: schedule.label.clone(),
        world_size: schedule.world_size,
        epochs: Vec::new(),
        total_units: 0.0,
        total_wall_s: 0.0,
        straggler_job: None,
        straggler_units: 0.0,
    };
    for (e, groups) in schedule.epochs.iter().enumerate() {
        // The epoch's bounding group: max Σ cost/ranks over its queue
        // (lowest group index breaking ties — deterministic).
        let mut best: Option<(usize, f64)> = None;
        for grp in groups {
            let units: f64 = grp
                .jobs
                .iter()
                .map(|j| schedule.jobs[j].duration_units())
                .sum();
            if best.is_none_or(|(_, b)| units > b) {
                best = Some((grp.group, units));
            }
        }
        let Some((g, units)) = best else { continue };
        let grp = groups
            .iter()
            .find(|grp| grp.group == g)
            .expect("bounding group exists");
        let steps: Vec<PathStep> = grp
            .jobs
            .iter()
            .map(|j| {
                let je = &schedule.jobs[j];
                PathStep {
                    job: je.job,
                    units: je.duration_units(),
                    wall_s: je.wall_s,
                    ranks: je.ranks,
                    stolen_ranks: je.stolen_ranks,
                }
            })
            .collect();
        let wall_s: f64 = steps.iter().map(|s| s.wall_s).sum();
        for s in &steps {
            if cp.straggler_job.is_none() || s.units > cp.straggler_units {
                cp.straggler_job = Some(s.job);
                cp.straggler_units = s.units;
            }
        }
        cp.total_units += units;
        cp.total_wall_s += wall_s;
        cp.epochs.push(EpochCritical {
            epoch: e,
            group: g,
            ranks: grp.ranks,
            units,
            wall_s,
            steps,
        });
    }
    Ok(cp)
}

/// Per-rank idle attribution of one traced batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IdleReport {
    /// Estimated idle per world rank, in cost units (deterministic:
    /// per epoch, `makespan − group duration` for every rank of each
    /// group, summed over epochs).
    pub est_idle_units: Vec<f64>,
    /// Estimated makespan in cost units (Σ over epochs of the epoch
    /// bound — identical to the critical path total).
    pub est_makespan_units: f64,
    /// Measured `(busy, wall)` seconds per rank, from the `rank.idle`
    /// events (empty when the trace has none). Annotation only.
    pub measured_busy_wall_s: Vec<(f64, f64)>,
}

/// Attribute idle time to ranks. Cost-unit figures come from the
/// schedule narration (deterministic); measured figures from `rank.idle`
/// events (annotations).
pub fn idle_attribution(doc: &TraceDoc, label: Option<&str>) -> Result<IdleReport, TraceError> {
    let schedule = reconstruct(doc, label)?;
    let root = format!("batch:{}/", schedule.label);
    let world = schedule.world_size;
    let mut report = IdleReport {
        est_idle_units: vec![0.0; world],
        ..IdleReport::default()
    };
    for groups in &schedule.epochs {
        let dur = |g: &GroupExec| -> f64 {
            g.jobs
                .iter()
                .map(|j| schedule.jobs[j].duration_units())
                .sum()
        };
        let makespan = groups.iter().map(dur).fold(0.0f64, f64::max);
        report.est_makespan_units += makespan;
        for g in groups {
            let idle = makespan - dur(g);
            for r in g.rank_start..(g.rank_start + g.ranks).min(world) {
                report.est_idle_units[r] += idle;
            }
        }
    }
    let batch_root = format!("batch:{}", schedule.label);
    let mut measured: BTreeMap<usize, (f64, f64)> = BTreeMap::new();
    for ev in &doc.events {
        if ev.name == "rank.idle" && (ev.path.starts_with(&root) || ev.path == batch_root) {
            measured.insert(
                ev.field("rank") as usize,
                (ev.field("busy_s"), ev.field("wall_s")),
            );
        }
    }
    report.measured_busy_wall_s = measured.into_values().collect();
    Ok(report)
}

/// `(cost, wall_seconds)` sample pairs per engine phase
/// (`gather`/`solve`/`scatter`), from the `engine.phase` events. Gather
/// and scatter costs are planned value bytes; solve costs are perfmodel
/// cost units — each phase fits its own coefficient.
pub fn phase_samples(doc: &TraceDoc, label: &str) -> BTreeMap<String, Vec<(f64, f64)>> {
    let root = format!("batch:{label}/");
    let mut out: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for ev in &doc.events {
        if ev.name != "engine.phase" || !ev.path.starts_with(&root) {
            continue;
        }
        if let Some(phase) = path_seg(&ev.path, "phase") {
            out.entry(phase.to_string())
                .or_default()
                .push((ev.cost, ev.wall_s));
        }
    }
    out
}

/// Aggregate model-vs-measured skew per `(job, phase)`: summed cost and
/// wall seconds. A job whose `cost/wall` throughput is far below the
/// batch-wide mean for the same phase is one the perfmodel underestimates
/// (reported by `smdoctor critical-path`; never fed back into
/// scheduling).
pub fn job_phase_skew(doc: &TraceDoc, label: &str) -> BTreeMap<(usize, String), (f64, f64)> {
    let root = format!("batch:{label}/");
    let mut out: BTreeMap<(usize, String), (f64, f64)> = BTreeMap::new();
    for ev in &doc.events {
        if ev.name != "engine.phase" || !ev.path.starts_with(&root) {
            continue;
        }
        let (Some(job), Some(phase)) = (path_idx(&ev.path, "job"), path_seg(&ev.path, "phase"))
        else {
            continue;
        };
        let slot = out.entry((job, phase.to_string())).or_insert((0.0, 0.0));
        slot.0 += ev.cost;
        slot.1 += ev.wall_s;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature two-epoch schedule narration: epoch 0 has two groups
    /// (group 0: jobs 0,2 on 1 rank; group 1: job 1 on 1 rank), epoch 1
    /// one group of 2 ranks running job 3 (1 stolen rank).
    fn narrated_doc() -> TraceDoc {
        let mk = |path: &str, name: &str, seq, cost, wall, fields: &[(&str, f64)]| RecEvent {
            path: path.into(),
            name: name.into(),
            seq,
            cost,
            wall_s: wall,
            fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        };
        let b = "batch:t";
        TraceDoc {
            label: "t".into(),
            version: TRACE_SCHEMA_VERSION,
            events: vec![
                mk(
                    &format!("{b}/epoch:0/group:0"),
                    "sched.queue",
                    0,
                    100.0,
                    0.0,
                    &[("jobs", 2.0), ("ranks", 1.0), ("rank_start", 0.0)],
                ),
                mk(
                    &format!("{b}/epoch:0/group:0"),
                    "sched.job",
                    1,
                    60.0,
                    0.0,
                    &[
                        ("job", 0.0),
                        ("pos", 0.0),
                        ("ranks", 1.0),
                        ("stolen_ranks", 0.0),
                    ],
                ),
                mk(
                    &format!("{b}/epoch:0/group:0"),
                    "sched.job",
                    2,
                    40.0,
                    0.0,
                    &[
                        ("job", 2.0),
                        ("pos", 1.0),
                        ("ranks", 1.0),
                        ("stolen_ranks", 0.0),
                    ],
                ),
                mk(
                    &format!("{b}/epoch:0/group:1"),
                    "sched.queue",
                    3,
                    30.0,
                    0.0,
                    &[("jobs", 1.0), ("ranks", 1.0), ("rank_start", 1.0)],
                ),
                mk(
                    &format!("{b}/epoch:0/group:1"),
                    "sched.job",
                    4,
                    30.0,
                    0.0,
                    &[
                        ("job", 1.0),
                        ("pos", 0.0),
                        ("ranks", 1.0),
                        ("stolen_ranks", 0.0),
                    ],
                ),
                mk(
                    &format!("{b}/epoch:1/group:0"),
                    "sched.queue",
                    5,
                    50.0,
                    0.0,
                    &[("jobs", 1.0), ("ranks", 2.0), ("rank_start", 0.0)],
                ),
                mk(
                    &format!("{b}/epoch:1/group:0"),
                    "sched.job",
                    6,
                    50.0,
                    0.0,
                    &[
                        ("job", 3.0),
                        ("pos", 0.0),
                        ("ranks", 2.0),
                        ("stolen_ranks", 1.0),
                    ],
                ),
                mk(
                    &format!("{b}/epoch:0/group:0/job:0"),
                    "job.done",
                    7,
                    60.0,
                    0.5,
                    &[("group_size", 1.0)],
                ),
                mk(
                    &format!("{b}/epoch:0/group:0/job:0/iter:0/phase:solve"),
                    "engine.phase",
                    8,
                    60.0,
                    0.4,
                    &[],
                ),
                mk(
                    &format!("{b}/epoch:0/group:0/job:0/iter:0/phase:gather"),
                    "engine.phase",
                    9,
                    128.0,
                    0.01,
                    &[],
                ),
                mk(
                    "batch:t",
                    "rank.idle",
                    10,
                    0.0,
                    0.2,
                    &[("rank", 1.0), ("busy_s", 0.3), ("wall_s", 0.5)],
                ),
            ],
            metrics: Vec::new(),
        }
    }

    #[test]
    fn reconstructs_epochs_groups_and_queue_order() {
        let s = reconstruct(&narrated_doc(), None).unwrap();
        assert_eq!(s.label, "t");
        assert_eq!(s.world_size, 2);
        assert_eq!(s.epochs.len(), 2);
        assert_eq!(s.epochs[0][0].jobs, vec![0, 2]);
        assert_eq!(s.epochs[0][1].jobs, vec![1]);
        assert_eq!(s.epochs[1][0].jobs, vec![3]);
        assert_eq!(s.jobs[&3].stolen_ranks, 1);
        assert_eq!(s.jobs[&0].wall_s, 0.5);
    }

    #[test]
    fn critical_path_walks_the_bounding_chain() {
        let cp = critical_path(&narrated_doc(), Some("t")).unwrap();
        // Epoch 0: group 0 runs 60+40=100 units on 1 rank vs group 1's
        // 30; epoch 1: job 3 on 2 ranks = 25 units. Total 125.
        assert_eq!(cp.epochs.len(), 2);
        assert_eq!(cp.epochs[0].group, 0);
        assert_eq!(
            cp.epochs[0].steps.iter().map(|s| s.job).collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert!((cp.total_units - 125.0).abs() < 1e-12);
        assert_eq!(cp.straggler_job, Some(0));
        assert!((cp.straggler_units - 60.0).abs() < 1e-12);
        // Deterministic rendering mentions the straggler and no wall
        // values.
        let r = cp.render();
        assert!(r.contains("straggler: job 0"));
        assert!(!r.contains("wall"));
        // A second analysis of the same doc renders bit-identically.
        assert_eq!(r, critical_path(&narrated_doc(), None).unwrap().render());
    }

    #[test]
    fn idle_attribution_charges_waiting_ranks() {
        let idle = idle_attribution(&narrated_doc(), None).unwrap();
        // Epoch 0 makespan 100: rank 0 idles 0, rank 1 idles 70.
        // Epoch 1: one group covers both ranks — no idle.
        assert_eq!(idle.est_idle_units, vec![0.0, 70.0]);
        assert!((idle.est_makespan_units - 125.0).abs() < 1e-12);
        assert_eq!(idle.measured_busy_wall_s, vec![(0.3, 0.5)]);
    }

    #[test]
    fn phase_samples_split_by_phase() {
        let samples = phase_samples(&narrated_doc(), "t");
        assert_eq!(samples["solve"], vec![(60.0, 0.4)]);
        assert_eq!(samples["gather"], vec![(128.0, 0.01)]);
        let skew = job_phase_skew(&narrated_doc(), "t");
        assert_eq!(skew[&(0, "solve".to_string())], (60.0, 0.4));
    }

    #[test]
    fn parse_rejects_foreign_versions_and_garbage() {
        assert_eq!(TraceDoc::parse("").unwrap_err(), TraceError::Empty);
        assert!(matches!(
            TraceDoc::parse("{\"schema\":\"other\"}").unwrap_err(),
            TraceError::BadHeader(_)
        ));
        let wrong = format!(
            "{{\"schema\":\"sm-trace\",\"version\":{},\"label\":\"x\"}}",
            TRACE_SCHEMA_VERSION + 7
        );
        assert!(matches!(
            TraceDoc::parse(&wrong).unwrap_err(),
            TraceError::VersionMismatch { .. }
        ));
        let good_header = format!(
            "{{\"schema\":\"sm-trace\",\"version\":{TRACE_SCHEMA_VERSION},\"label\":\"x\"}}"
        );
        let with_bad_line = format!("{good_header}\nnot json");
        assert!(matches!(
            TraceDoc::parse(&with_bad_line).unwrap_err(),
            TraceError::Line { line: 2, .. }
        ));
        let ok = TraceDoc::parse(&good_header).unwrap();
        assert_eq!(ok.label, "x");
        assert!(matches!(
            reconstruct(&ok, None).unwrap_err(),
            TraceError::NoSchedule(_)
        ));
    }

    #[test]
    fn jsonl_roundtrip_through_session_export() {
        let session = TraceSession::start("rt");
        {
            let _b = crate::span(crate::SpanKind::Batch, "rt");
            let _e = crate::span(crate::SpanKind::Epoch, 0);
            let _g = crate::span(crate::SpanKind::Group, 0);
            crate::emit(
                "sched.queue",
                10.0,
                0.0,
                &[("jobs", 1.0), ("ranks", 1.0), ("rank_start", 0.0)],
            );
            crate::emit(
                "sched.job",
                10.0,
                0.0,
                &[
                    ("job", 0.0),
                    ("pos", 0.0),
                    ("ranks", 1.0),
                    ("stolen_ranks", 0.0),
                ],
            );
            crate::counter_add(&crate::scoped("c"), 3);
        }
        let path = std::env::temp_dir().join("sm_trace_analyze_roundtrip.jsonl");
        session.write_jsonl(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let doc = TraceDoc::parse(&text).unwrap();
        assert_eq!(doc.label, "rt");
        assert_eq!(doc.events.len(), 2);
        assert_eq!(doc.metrics.len(), 1);
        // The parsed doc and the live session agree on the critical path.
        let from_file = critical_path(&doc, Some("rt")).unwrap().render();
        let live = critical_path(&TraceDoc::from_session(&session), Some("rt"))
            .unwrap()
            .render();
        assert_eq!(from_file, live);
        assert!(from_file.contains("job 0"));
    }
}
