//! Chrome trace-event (Perfetto) export.
//!
//! Converts a traced scheduler run into the Chrome trace-event JSON
//! format, so `results/PERFETTO_*.json` opens directly in
//! <https://ui.perfetto.dev> (or `chrome://tracing`): one **process per
//! world rank** (`pid = rank`), one **thread track per group index**
//! (`tid = group`), one complete (`"ph":"X"`) slice per job execution on
//! every rank of the executing group.
//!
//! The trace stream records no absolute timestamps (the two-clock rule:
//! wall time is an annotation, not a clock), so the exporter *synthesizes*
//! a timeline from the barrier model: every epoch starts at the maximum
//! lane end of the previous epoch (the world re-split is a collective
//! barrier), and each group's queue runs sequentially from there. Slice
//! durations are the per-job measured wall seconds (max over the group's
//! ranks) in microseconds; when the trace carries no `job.done` wall
//! annotations at all, cost-unit durations (`cost / ranks`, rendered as
//! microseconds) are used so the schedule shape still visualizes.
//!
//! Field ordering is deterministic (`name, ph, pid, tid, ts, dur, args`,
//! metadata first, slices in `(epoch, group, pos, rank)` order), so two
//! exports of the same trace differ only in measured durations. Besides
//! the standard `traceEvents` array the document carries a top-level
//! `"sm"` provenance stamp (schema name, [`TRACE_SCHEMA_VERSION`],
//! session label, slice count) that `smdoctor --check` audits; Perfetto
//! ignores unknown top-level keys.

use crate::analyze::{reconstruct, Schedule, TraceDoc, TraceError};
use crate::json::Json;
use crate::TRACE_SCHEMA_VERSION;

/// Schema name stamped into the exporter's `"sm"` provenance object.
pub const PERFETTO_SCHEMA: &str = "sm-perfetto";

/// Render a reconstructed schedule as a Chrome trace-event JSON document.
/// See the module docs for the timeline model.
pub fn chrome_trace(schedule: &Schedule) -> Json {
    // Durations: measured wall microseconds, or cost units rendered as
    // microseconds when no job carries a wall annotation (planning-only
    // traces).
    let any_wall = schedule.jobs.values().any(|j| j.wall_s > 0.0);
    let dur_us = |job: usize| -> f64 {
        let je = &schedule.jobs[&job];
        if any_wall {
            je.wall_s * 1e6
        } else {
            je.duration_units()
        }
    };

    let mut events: Vec<Json> = Vec::new();

    // Metadata: name each rank process and each group track. Collect the
    // (pid) and (pid, tid) universes in sorted order for determinism.
    let mut rank_groups: Vec<(usize, usize)> = Vec::new();
    for groups in &schedule.epochs {
        for g in groups {
            for r in g.rank_start..g.rank_start + g.ranks {
                rank_groups.push((r, g.group));
            }
        }
    }
    rank_groups.sort_unstable();
    rank_groups.dedup();
    let mut ranks: Vec<usize> = rank_groups.iter().map(|(r, _)| *r).collect();
    ranks.dedup();
    for r in &ranks {
        events.push(Json::obj([
            ("name", Json::Str("process_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::Num(*r as f64)),
            (
                "args",
                Json::obj([("name", Json::Str(format!("rank {r}")))]),
            ),
        ]));
    }
    for (r, g) in &rank_groups {
        events.push(Json::obj([
            ("name", Json::Str("thread_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::Num(*r as f64)),
            ("tid", Json::Num(*g as f64)),
            (
                "args",
                Json::obj([("name", Json::Str(format!("group {g}")))]),
            ),
        ]));
    }

    // Job slices under the barrier model: epoch start = max lane end of
    // the previous epoch; each group's queue runs sequentially.
    let mut lane_end = vec![0.0f64; schedule.world_size.max(1)];
    let mut slices = 0usize;
    for groups in &schedule.epochs {
        let epoch_start = lane_end.iter().copied().fold(0.0f64, f64::max);
        for g in groups {
            let mut t = epoch_start;
            for &job in &g.jobs {
                let je = &schedule.jobs[&job];
                let dur = dur_us(job);
                for r in g.rank_start..g.rank_start + g.ranks {
                    events.push(Json::obj([
                        ("name", Json::Str(format!("job {job}"))),
                        ("ph", Json::Str("X".into())),
                        ("pid", Json::Num(r as f64)),
                        ("tid", Json::Num(g.group as f64)),
                        ("ts", Json::Num(t)),
                        ("dur", Json::Num(dur)),
                        (
                            "args",
                            Json::obj([
                                ("job", Json::Num(je.job as f64)),
                                ("epoch", Json::Num(je.epoch as f64)),
                                ("pos", Json::Num(je.pos as f64)),
                                ("cost", Json::Num(je.cost)),
                                ("ranks", Json::Num(je.ranks as f64)),
                                ("stolen_ranks", Json::Num(je.stolen_ranks as f64)),
                                ("wall_s", Json::Num(je.wall_s)),
                            ]),
                        ),
                    ]));
                    slices += 1;
                }
                t += dur;
            }
            for r in g.rank_start..(g.rank_start + g.ranks).min(lane_end.len()) {
                lane_end[r] = t;
            }
        }
    }

    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".into())),
        (
            "sm",
            Json::obj([
                ("schema", Json::Str(PERFETTO_SCHEMA.into())),
                ("version", Json::Num(TRACE_SCHEMA_VERSION as f64)),
                ("label", Json::Str(schedule.label.clone())),
                ("slices", Json::Num(slices as f64)),
                ("world_size", Json::Num(schedule.world_size as f64)),
            ]),
        ),
    ])
}

/// [`chrome_trace`] straight from a parsed trace document: reconstruct
/// the schedule of `label` (or the only traced batch when `None`), then
/// render.
pub fn export(doc: &TraceDoc, label: Option<&str>) -> Result<Json, TraceError> {
    let schedule = reconstruct(doc, label)?;
    Ok(chrome_trace(&schedule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{GroupExec, JobExec};
    use std::collections::BTreeMap;

    fn two_epoch_schedule() -> Schedule {
        let mut jobs = BTreeMap::new();
        jobs.insert(
            0,
            JobExec {
                job: 0,
                epoch: 0,
                group: 0,
                pos: 0,
                cost: 60.0,
                ranks: 1,
                wall_s: 0.5,
                stolen_ranks: 0,
            },
        );
        jobs.insert(
            1,
            JobExec {
                job: 1,
                epoch: 0,
                group: 1,
                pos: 0,
                cost: 30.0,
                ranks: 1,
                wall_s: 0.2,
                stolen_ranks: 0,
            },
        );
        jobs.insert(
            2,
            JobExec {
                job: 2,
                epoch: 1,
                group: 0,
                pos: 0,
                cost: 50.0,
                ranks: 2,
                wall_s: 0.1,
                stolen_ranks: 1,
            },
        );
        Schedule {
            label: "t".into(),
            epochs: vec![
                vec![
                    GroupExec {
                        group: 0,
                        rank_start: 0,
                        ranks: 1,
                        est_cost: 60.0,
                        jobs: vec![0],
                    },
                    GroupExec {
                        group: 1,
                        rank_start: 1,
                        ranks: 1,
                        est_cost: 30.0,
                        jobs: vec![1],
                    },
                ],
                vec![GroupExec {
                    group: 0,
                    rank_start: 0,
                    ranks: 2,
                    est_cost: 50.0,
                    jobs: vec![2],
                }],
            ],
            jobs,
            world_size: 2,
        }
    }

    #[test]
    fn emits_metadata_slices_and_barrier_timeline() {
        let doc = chrome_trace(&two_epoch_schedule());
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 process_name + 3 thread_name (rank0/group0, rank1/group0,
        // rank1/group1) + 4 job slices (job0 on rank0, job1 on rank1,
        // job2 on ranks 0 and 1).
        let meta = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .count();
        let slices: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(meta, 5);
        assert_eq!(slices.len(), 4);
        // Epoch 1 starts at the barrier: max lane end = 0.5 s = 5e5 µs.
        let job2 = slices
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("job 2"))
            .unwrap();
        assert_eq!(job2.get("ts").and_then(Json::as_f64), Some(5e5));
        assert_eq!(
            job2.get("args")
                .unwrap()
                .get("stolen_ranks")
                .and_then(Json::as_f64),
            Some(1.0)
        );
        // Provenance stamp for smdoctor.
        let sm = doc.get("sm").unwrap();
        assert_eq!(
            sm.get("schema").and_then(Json::as_str),
            Some(PERFETTO_SCHEMA)
        );
        assert_eq!(sm.get("slices").and_then(Json::as_f64), Some(4.0));
        // Deterministic field ordering: the serialized form starts with
        // traceEvents and each slice leads with name/ph/pid/tid/ts/dur.
        let text = doc.to_string();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains(
            "\"name\":\"job 0\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0,\"dur\":500000"
        ));
    }

    #[test]
    fn falls_back_to_cost_units_without_wall_annotations() {
        let mut s = two_epoch_schedule();
        for j in s.jobs.values_mut() {
            j.wall_s = 0.0;
        }
        let doc = chrome_trace(&s);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let job0 = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("job 0"))
            .unwrap();
        // Cost units as µs: job 0 = 60/1.
        assert_eq!(job0.get("dur").and_then(Json::as_f64), Some(60.0));
    }
}
