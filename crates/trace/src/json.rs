//! Minimal JSON value, parser and serializer (std-only).
//!
//! This is the one JSON implementation of the workspace: the trace
//! analyzers ([`crate::analyze`]) parse exported `TRACE_*.jsonl` streams
//! with it, the Perfetto exporter ([`crate::chrome`]) renders through it,
//! and `sm_bench::output` re-exports it for the `BENCH_*.json` trajectory
//! documents and the `smdoctor` CLI. It covers the full JSON grammar the
//! workspace emits; objects keep **insertion order**, so serialization is
//! deterministic — documents render with exactly the key order they were
//! built with.

/// Minimal JSON value for the workspace's machine-readable artifacts
/// (the workspace has no serde; this covers everything the benches and
/// traces emit).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// The null value (also what non-finite numbers serialize as).
    Null,
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parse a JSON document (recursive descent over the full grammar the
    /// benches and traces emit). Returns a readable error with the byte
    /// offset on malformed input — `smdoctor` reports it as corruption.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object (first match; `None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(b: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", want as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect_byte(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).expect("ASCII number bytes");
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("malformed number '{text}' at byte {start}"))
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unmodified).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xc0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Num(x) => {
                if !x.is_finite() {
                    // JSON has no NaN/inf; null keeps the document valid.
                    write!(f, "null")
                } else if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
            Json::Bool(b) => write!(f, "{b}"),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_insertion_ordered_and_escaped() {
        let doc = Json::obj([
            ("name", Json::Str("x\"y".into())),
            ("n", Json::Num(4.0)),
            ("t", Json::Num(0.125)),
            ("ok", Json::Bool(true)),
            ("xs", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
        ]);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"x\"y","n":4,"t":0.125,"ok":true,"xs":[1,2]}"#
        );
    }

    #[test]
    fn parser_roundtrips_serializer_output() {
        let doc = Json::obj([
            ("name", Json::Str("a \"quoted\" name\n".into())),
            ("count", Json::Num(42.0)),
            ("ratio", Json::Num(-0.5)),
            ("flag", Json::Bool(true)),
            ("missing", Json::Null),
            (
                "nested",
                Json::Arr(vec![Json::Num(1.0), Json::Obj(vec![]), Json::Arr(vec![])]),
            ),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        assert_eq!(doc.get("count").and_then(Json::as_f64), Some(42.0));
        assert_eq!(doc.get("nested").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(doc.as_obj().unwrap().len(), 6);
        assert!(Json::parse("{\"x\": 1} trailing").is_err());
        assert!(Json::parse("{\"x\": }").is_err());
    }
}
