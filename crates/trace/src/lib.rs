//! # sm-trace — deterministic structured tracing + typed metrics
//!
//! The observability substrate of the submatrix stack: hierarchical
//! structured **spans** (batch → epoch → group → job → SCF iteration →
//! phase), a typed **metrics registry** (counters, gauges, byte/time
//! histograms), and a JSONL emitter the `smdoctor` CLI consumes.
//!
//! ## The two-clock rule
//!
//! Every event carries two clocks:
//!
//! * a **deterministic logical clock** — the event's span path plus its
//!   per-thread sequence number and a *cost* in perfmodel units (plan
//!   cost, planned bytes). These are pure functions of the schedule and
//!   the inputs, so tests may assert on them exactly: the
//!   [`TraceSession::span_tree`] rendering (paths, event names, event
//!   counts, cost maxima) is **bit-identical across reruns** at a fixed
//!   world size.
//! * **wall-time annotations** (`wall_s`, seconds histograms) — recorded
//!   for humans and for `smdoctor`'s idle breakdowns, but *never* fed
//!   back into scheduling and never part of the deterministic view.
//!
//! Metric counters are exact tallies but their hit/build *splits* can
//! shift with benign plan-cache races between concurrent groups (the
//! consensus identity fixes only the sum), so the deterministic contract
//! covers the span tree, not the metric registry.
//!
//! ## Non-perturbation
//!
//! Tracing is **off by default** (one relaxed atomic load on the hot
//! path) and, when enabled, only *observes*: nothing in this crate feeds
//! measurements back into any scheduling or numeric decision. The
//! `stealing_equivalence`/`scf_service_equivalence` suites pin that
//! instrumented grand-canonical batches stay bitwise-identical to serial
//! execution.
//!
//! ## Sessions
//!
//! Recording happens inside a [`TraceSession`], which holds a global
//! lock so concurrent tests cannot interleave sessions. Instrumented
//! code that runs *outside* any span context while a session is active
//! records under the `untraced` root; session consumers filter with
//! [`TraceSession::span_tree_under`] / [`TraceSession::metrics_under`]
//! using their own batch label, so unrelated concurrent work cannot
//! pollute an assertion.
//!
//! ## Schema
//!
//! [`TraceSession::write_jsonl`] emits one self-describing header line
//! (carrying [`TRACE_SCHEMA_VERSION`]), then one line per event and one
//! per metric. Consumers must reject header version mismatches — the
//! `smdoctor --check` mode does, and CI runs it over every bench
//! artifact.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

pub mod analyze;
pub mod chrome;
pub mod json;

/// Version of the JSONL trace schema. Bump only with a migration note in
/// `ARCHITECTURE.md`; `smdoctor --check` fails on any mismatch.
///
/// v2: the scheduler narrates each committed queue entry with a
/// `sched.job` event (queue order, ranks, steal attribution) — the
/// dependency edges [`analyze::critical_path`] walks. v1 traces parse as
/// [`analyze::TraceError::VersionMismatch`]; regenerate by rerunning the
/// traced bench.
///
/// v3: fault-injected batches add the recovery narration — one
/// `fault.injected` per committed rank failure, one `sched.retry` per
/// poisoned attempt re-entering the deferred queue (with its backoff
/// target epoch), one `job.quarantined` per exhausted retry budget —
/// and `sched.job` events gain `attempt`/`poisoned` fields. v1/v2
/// traces parse as [`analyze::TraceError::VersionMismatch`];
/// regenerate by rerunning the traced bench.
pub const TRACE_SCHEMA_VERSION: u32 = 3;

/// Root path used for events and metrics recorded while no span context
/// is installed on the emitting thread.
pub const UNTRACED_ROOT: &str = "untraced";

/// The typed span hierarchy, top to bottom. Each level contributes one
/// `kind:value` segment to the span path (e.g.
/// `batch:svc/epoch:0/group:1/job:3/iter:2/phase:solve`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// One scheduled batch (the root; its value is the batch label).
    Batch,
    /// One epoch of the steal schedule.
    Epoch,
    /// One subcommunicator group within an epoch.
    Group,
    /// One job (by submission index).
    Job,
    /// One SCF iteration within an iterative job.
    Iteration,
    /// One engine phase (`plan` / `gather` / `solve` / `scatter` / ...).
    Phase,
}

impl SpanKind {
    /// Stable lowercase label used in span paths and the JSONL stream.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Batch => "batch",
            SpanKind::Epoch => "epoch",
            SpanKind::Group => "group",
            SpanKind::Job => "job",
            SpanKind::Iteration => "iter",
            SpanKind::Phase => "phase",
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Hierarchical span path the event was emitted under.
    pub path: String,
    /// Event name (a stable identifier, e.g. `engine.phase`).
    pub name: &'static str,
    /// Per-thread logical sequence number (deterministic: every rank
    /// thread's execution order is deterministic, and rank threads are
    /// created fresh per batch).
    pub seq: u64,
    /// Deterministic logical cost of the event, in perfmodel units
    /// (estimated cost, planned bytes); safe to assert on.
    pub cost: f64,
    /// Wall-time annotation in seconds (never deterministic, never fed
    /// back into scheduling, never part of the deterministic view).
    pub wall_s: f64,
    /// Auxiliary numeric fields; excluded from the deterministic span
    /// tree (they may carry wall-derived values).
    pub fields: Vec<(&'static str, f64)>,
}

/// A log₂-bucketed histogram. For byte histograms the recorded values are
/// integers and the whole record is deterministic; for seconds histograms
/// it is a wall-time annotation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Sample counts keyed by `floor(log2(value))` (`-1` for values
    /// `< 1`); sorted, so snapshots render deterministically.
    pub buckets: BTreeMap<i32, u64>,
}

impl Histogram {
    fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        let bucket = if value < 1.0 { -1 } else { value.log2() as i32 };
        *self.buckets.entry(bucket).or_insert(0) += 1;
    }
}

/// One entry of the typed metrics registry.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotone integer tally (exact; bytes, messages, cache decisions).
    Counter(u64),
    /// Last-write-wins instantaneous value (cache occupancy).
    Gauge(f64),
    /// Log₂ histogram of byte sizes (deterministic).
    BytesHistogram(Histogram),
    /// Log₂ histogram of wall seconds (annotation only).
    SecondsHistogram(Histogram),
}

impl Metric {
    fn kind_label(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::BytesHistogram(_) => "bytes_hist",
            Metric::SecondsHistogram(_) => "seconds_hist",
        }
    }
}

#[derive(Default)]
struct TraceState {
    events: Vec<Event>,
    metrics: BTreeMap<String, Metric>,
    label: String,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SESSION: Mutex<()> = Mutex::new(());

fn state() -> &'static Mutex<TraceState> {
    static STATE: OnceLock<Mutex<TraceState>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(TraceState::default()))
}

fn lock_state() -> MutexGuard<'static, TraceState> {
    state().lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static CONTEXT: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
    static SEQ: Cell<u64> = const { Cell::new(0) };
}

/// Whether a [`TraceSession`] is currently recording. One relaxed atomic
/// load — the entire overhead instrumented hot paths pay when tracing is
/// off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// RAII guard of one span segment; pops the segment from the emitting
/// thread's context stack on drop.
#[must_use = "the span ends when the guard drops"]
pub struct SpanGuard {
    pop: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.pop {
            CONTEXT.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
}

/// Push a `kind:value` segment onto the current thread's span context.
/// No-op (and allocation-free) when tracing is disabled.
pub fn span(kind: SpanKind, value: impl std::fmt::Display) -> SpanGuard {
    if !enabled() {
        return SpanGuard { pop: false };
    }
    CONTEXT.with(|c| c.borrow_mut().push(format!("{}:{value}", kind.label())));
    SpanGuard { pop: true }
}

/// Convenience: a [`SpanKind::Phase`] span.
pub fn phase_span(name: &str) -> SpanGuard {
    span(SpanKind::Phase, name)
}

/// The emitting thread's current span path (`/`-joined segments), or
/// [`UNTRACED_ROOT`] when no span is installed.
pub fn current_path() -> String {
    CONTEXT.with(|c| {
        let c = c.borrow();
        if c.is_empty() {
            UNTRACED_ROOT.to_string()
        } else {
            c.join("/")
        }
    })
}

/// A metric key scoped under the full current span path
/// (`batch:x/epoch:0/group:1/job:3/<name>`). Use for per-group /
/// per-job attribution (communication bytes).
pub fn scoped(name: &str) -> String {
    format!("{}/{name}", current_path())
}

/// A metric key scoped under the current span *root* only
/// (`batch:x/<name>`). Use for engine-global figures (the shared plan
/// cache) that should aggregate per batch, not per job.
pub fn scoped_root(name: &str) -> String {
    let root = CONTEXT.with(|c| {
        c.borrow()
            .first()
            .cloned()
            .unwrap_or_else(|| UNTRACED_ROOT.to_string())
    });
    format!("{root}/{name}")
}

/// Record an event at the current span path. `cost` is the deterministic
/// logical cost; `wall_s` a wall-time annotation; `fields` auxiliary
/// values (excluded from the deterministic span tree). No-op when
/// tracing is disabled.
pub fn emit(name: &'static str, cost: f64, wall_s: f64, fields: &[(&'static str, f64)]) {
    if !enabled() {
        return;
    }
    let path = current_path();
    let seq = SEQ.with(|s| {
        let v = s.get();
        s.set(v + 1);
        v
    });
    lock_state().events.push(Event {
        path,
        name,
        seq,
        cost,
        wall_s,
        fields: fields.to_vec(),
    });
}

fn with_metric(name: &str, init: impl FnOnce() -> Metric, update: impl FnOnce(&mut Metric)) {
    let mut st = lock_state();
    let entry = st.metrics.entry(name.to_string()).or_insert_with(init);
    update(entry);
}

/// Add to a counter metric, creating it at zero on first use. Panics if
/// `name` is already registered as a different metric type.
pub fn counter_add(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    with_metric(
        name,
        || Metric::Counter(0),
        |m| match m {
            Metric::Counter(c) => *c += value,
            other => panic!("metric '{name}' is a {}, not a counter", other.kind_label()),
        },
    );
}

/// Set a gauge metric (last write wins). Panics on metric-type mismatch.
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    with_metric(
        name,
        || Metric::Gauge(value),
        |m| match m {
            Metric::Gauge(g) => *g = value,
            other => panic!("metric '{name}' is a {}, not a gauge", other.kind_label()),
        },
    );
}

/// Record a sample into a byte-size histogram (deterministic). Panics on
/// metric-type mismatch.
pub fn hist_bytes(name: &str, bytes: u64) {
    if !enabled() {
        return;
    }
    with_metric(
        name,
        || Metric::BytesHistogram(Histogram::default()),
        |m| match m {
            Metric::BytesHistogram(h) => h.record(bytes as f64),
            other => panic!(
                "metric '{name}' is a {}, not a bytes histogram",
                other.kind_label()
            ),
        },
    );
}

/// Record a sample into a wall-seconds histogram (annotation only).
/// Panics on metric-type mismatch.
pub fn hist_seconds(name: &str, seconds: f64) {
    if !enabled() {
        return;
    }
    with_metric(
        name,
        || Metric::SecondsHistogram(Histogram::default()),
        |m| match m {
            Metric::SecondsHistogram(h) => h.record(seconds),
            other => panic!(
                "metric '{name}' is a {}, not a seconds histogram",
                other.kind_label()
            ),
        },
    );
}

/// An exclusive recording session: clears all buffers, enables tracing,
/// and holds a global lock so concurrent sessions serialize. Tracing is
/// disabled again when the session drops.
pub struct TraceSession {
    _excl: MutexGuard<'static, ()>,
    label: String,
}

impl TraceSession {
    /// Start recording under `label` (conventionally the batch label the
    /// traced scheduler run uses, so consumers can filter with
    /// [`span_tree_under`](Self::span_tree_under)).
    pub fn start(label: &str) -> TraceSession {
        let excl = SESSION.lock().unwrap_or_else(|e| e.into_inner());
        {
            let mut st = lock_state();
            st.events.clear();
            st.metrics.clear();
            st.label = label.to_string();
        }
        ENABLED.store(true, Ordering::SeqCst);
        TraceSession {
            _excl: excl,
            label: label.to_string(),
        }
    }

    /// The session label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Snapshot of every recorded event, in arrival order (arrival order
    /// is *not* deterministic across rank threads; sort by `(path, name,
    /// seq)` — or use [`span_tree`](Self::span_tree) — for a
    /// deterministic view).
    pub fn events(&self) -> Vec<Event> {
        lock_state().events.clone()
    }

    /// Snapshot of the metric registry, sorted by key.
    pub fn metrics(&self) -> Vec<(String, Metric)> {
        lock_state()
            .metrics
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// [`metrics`](Self::metrics) restricted to keys under `prefix`
    /// (exactly `prefix` or starting with `prefix/`).
    pub fn metrics_under(&self, prefix: &str) -> Vec<(String, Metric)> {
        self.metrics()
            .into_iter()
            .filter(|(k, _)| under_prefix(k, prefix))
            .collect()
    }

    /// The **deterministic span tree**: every span path (sorted), each
    /// with its event names, counts and per-name cost maxima. Wall-time
    /// annotations, auxiliary fields and metric values are excluded, so
    /// this rendering is bit-identical across reruns of a deterministic
    /// schedule at fixed world size — the representation tests assert on.
    pub fn span_tree(&self) -> String {
        self.span_tree_under("")
    }

    /// [`span_tree`](Self::span_tree) restricted to paths under `prefix`
    /// (use the traced batch's label root, e.g. `batch:mylabel`, to
    /// exclude unrelated concurrent work).
    pub fn span_tree_under(&self, prefix: &str) -> String {
        let mut tree: BTreeMap<String, BTreeMap<&'static str, (u64, f64)>> = BTreeMap::new();
        for ev in lock_state().events.iter() {
            if !prefix.is_empty() && !under_prefix(&ev.path, prefix) {
                continue;
            }
            let names = tree.entry(ev.path.clone()).or_default();
            let slot = names.entry(ev.name).or_insert((0, f64::NEG_INFINITY));
            slot.0 += 1;
            slot.1 = slot.1.max(ev.cost);
        }
        let mut out = String::new();
        for (path, names) in &tree {
            let _ = writeln!(out, "{path}");
            for (name, (count, cost_max)) in names {
                let _ = writeln!(out, "  {name} x{count} cost_max={cost_max:.6e}");
            }
        }
        out
    }

    /// Write the session as a JSONL trace: a self-describing header line
    /// (schema name, [`TRACE_SCHEMA_VERSION`], label, counts), then one
    /// line per event, then one per metric.
    pub fn write_jsonl(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let st = lock_state();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"schema\":\"sm-trace\",\"version\":{TRACE_SCHEMA_VERSION},\"label\":{},\"events\":{},\"metrics\":{}}}",
            json_str(&st.label),
            st.events.len(),
            st.metrics.len()
        );
        for ev in &st.events {
            let _ = write!(
                out,
                "{{\"type\":\"event\",\"path\":{},\"name\":{},\"seq\":{},\"cost\":{},\"wall_s\":{},\"fields\":{{",
                json_str(&ev.path),
                json_str(ev.name),
                ev.seq,
                json_num(ev.cost),
                json_num(ev.wall_s)
            );
            for (i, (k, v)) in ev.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_str(k), json_num(*v));
            }
            out.push_str("}}\n");
        }
        for (name, metric) in &st.metrics {
            let _ = write!(
                out,
                "{{\"type\":\"metric\",\"name\":{},\"kind\":\"{}\"",
                json_str(name),
                metric.kind_label()
            );
            match metric {
                Metric::Counter(c) => {
                    let _ = write!(out, ",\"value\":{c}");
                }
                Metric::Gauge(g) => {
                    let _ = write!(out, ",\"value\":{}", json_num(*g));
                }
                Metric::BytesHistogram(h) | Metric::SecondsHistogram(h) => {
                    let _ = write!(
                        out,
                        ",\"count\":{},\"sum\":{},\"buckets\":{{",
                        h.count,
                        json_num(h.sum)
                    );
                    for (i, (bucket, n)) in h.buckets.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "\"{bucket}\":{n}");
                    }
                    out.push('}');
                }
            }
            out.push_str("}\n");
        }
        std::fs::write(path, out)
    }

    /// Snapshot the session into the analyzer representation (the same
    /// document [`analyze::TraceDoc::parse`] yields from an exported
    /// JSONL stream).
    pub fn to_doc(&self) -> analyze::TraceDoc {
        analyze::TraceDoc::from_session(self)
    }

    /// Export the traced batch labelled `label` (or the only traced
    /// batch when `None`) as a Chrome trace-event document for
    /// ui.perfetto.dev. See [`chrome`] for the timeline model.
    pub fn to_chrome_trace(&self, label: Option<&str>) -> Result<json::Json, analyze::TraceError> {
        chrome::export(&self.to_doc(), label)
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
    }
}

fn under_prefix(key: &str, prefix: &str) -> bool {
    prefix.is_empty()
        || key == prefix
        || (key.starts_with(prefix) && key.as_bytes().get(prefix.len()) == Some(&b'/'))
}

/// Minimal JSON string escaping (the paths/names this crate emits are
/// plain ASCII, but stay valid for anything).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number rendering: integers without a fraction, `null` for
/// non-finite values (JSON has neither NaN nor infinities).
fn json_num(x: f64) -> String {
    if !x.is_finite() {
        "null".to_string()
    } else if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_session_scoped() {
        assert!(!enabled());
        emit("noop", 1.0, 0.0, &[]); // dropped silently
        let session = TraceSession::start("t-session");
        assert!(enabled());
        emit("hello", 2.0, 0.0, &[]);
        assert_eq!(session.events().len(), 1);
        drop(session);
        assert!(!enabled());
    }

    #[test]
    fn spans_nest_and_scope_keys() {
        let _session = TraceSession::start("t-spans");
        assert_eq!(current_path(), UNTRACED_ROOT);
        let _b = span(SpanKind::Batch, "x");
        {
            let _e = span(SpanKind::Epoch, 0);
            let _g = span(SpanKind::Group, 2);
            assert_eq!(current_path(), "batch:x/epoch:0/group:2");
            assert_eq!(scoped("comm.bytes"), "batch:x/epoch:0/group:2/comm.bytes");
            assert_eq!(scoped_root("plan_cache.hits"), "batch:x/plan_cache.hits");
        }
        assert_eq!(current_path(), "batch:x");
    }

    #[test]
    fn span_tree_is_deterministic_across_thread_interleavings() {
        let tree = |spread: u64| {
            let session = TraceSession::start("t-tree");
            std::thread::scope(|s| {
                for r in 0..4u64 {
                    s.spawn(move || {
                        // Perturb the interleaving; the tree must not care.
                        std::thread::sleep(std::time::Duration::from_micros(r * spread));
                        let _b = span(SpanKind::Batch, "t-tree");
                        let _g = span(SpanKind::Group, r % 2);
                        emit(
                            "work",
                            10.0 * (r % 2) as f64,
                            r as f64,
                            &[("rank", r as f64)],
                        );
                    });
                }
            });
            session.span_tree_under("batch:t-tree")
        };
        let a = tree(0);
        let b = tree(700);
        assert_eq!(a, b);
        assert!(a.contains("batch:t-tree/group:0"));
        assert!(a.contains("work x2"));
    }

    #[test]
    fn typed_metrics_accumulate() {
        let session = TraceSession::start("t-metrics");
        counter_add("a/bytes", 10);
        counter_add("a/bytes", 5);
        gauge_set("a/occupancy", 3.0);
        gauge_set("a/occupancy", 2.0);
        hist_bytes("a/sizes", 1024);
        hist_bytes("a/sizes", 1500);
        hist_seconds("a/latency", 0.25);
        let m: BTreeMap<String, Metric> = session.metrics().into_iter().collect();
        assert_eq!(m["a/bytes"], Metric::Counter(15));
        assert_eq!(m["a/occupancy"], Metric::Gauge(2.0));
        match &m["a/sizes"] {
            Metric::BytesHistogram(h) => {
                assert_eq!(h.count, 2);
                assert_eq!(h.buckets[&10], 2); // both in [1024, 2048)
            }
            other => panic!("wrong metric type: {other:?}"),
        }
        assert_eq!(
            session.metrics_under("a").len(),
            4,
            "prefix filter sees all four"
        );
        assert!(session.metrics_under("b").is_empty());
    }

    #[test]
    fn jsonl_has_versioned_header_and_one_line_per_record() {
        let session = TraceSession::start("t-jsonl");
        let _b = span(SpanKind::Batch, "j");
        emit("ev", 1.5, 0.125, &[("k", 2.0)]);
        counter_add("j/c", 7);
        let path = std::env::temp_dir().join("sm_trace_test_trace.jsonl");
        session.write_jsonl(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(&format!("\"version\":{TRACE_SCHEMA_VERSION}")));
        assert!(lines[0].contains("\"schema\":\"sm-trace\""));
        assert!(lines[1].contains("\"path\":\"batch:j\""));
        assert!(lines[1].contains("\"cost\":1.5"));
        assert!(lines[2].contains("\"kind\":\"counter\""));
        assert!(lines[2].contains("\"value\":7"));
    }

    #[test]
    fn jsonl_lines_are_balanced_json_for_every_metric_kind() {
        let session = TraceSession::start("t-jsonl-balanced");
        let _b = span(SpanKind::Batch, "j");
        emit("ev", 1.0, 0.0, &[("k", 2.0)]);
        counter_add("j/c", 7);
        gauge_set("j/g", 0.5);
        hist_bytes("j/hb", 1500);
        hist_seconds("j/hs", 0.25);
        let path = std::env::temp_dir().join("sm_trace_test_balanced.jsonl");
        session.write_jsonl(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for line in text.lines() {
            let opens = line.matches('{').count();
            let closes = line.matches('}').count();
            assert_eq!(opens, closes, "unbalanced JSONL line: {line}");
            assert!(line.ends_with('}'), "line ends mid-object: {line}");
        }
    }

    #[test]
    fn untraced_root_collects_contextless_records() {
        let session = TraceSession::start("t-untraced");
        emit("stray", 0.0, 0.0, &[]);
        counter_add(&scoped("stray.bytes"), 1);
        let tree = session.span_tree();
        assert!(tree.contains(UNTRACED_ROOT));
        assert!(session
            .metrics()
            .iter()
            .any(|(k, _)| k == "untraced/stray.bytes"));
        // And a labeled filter excludes them.
        assert!(session.span_tree_under("batch:none").is_empty());
    }
}
