//! Reduced-precision sign iteration on simulated accelerators (paper Sec. VI).
//!
//! Assembles a combined submatrix for a group of water molecules (the
//! paper offloads the 32-molecule combined submatrix), then runs the
//! 3rd-order Padé sign iteration (Eq. 19) in every emulated precision mode
//! and prints the convergence diagnostics of Figs. 12–13 plus the modelled
//! Table I throughputs.
//!
//! Run with: `cargo run --release --example accelerator_precision`

use cp2k_submatrix::prelude::*;
use sm_accel::pade::{energy_differences_mev_per_atom, pade3_sign_traced, PadeTraceOptions};
use sm_accel::perfmodel::{fpga_row, gpu_table, DeviceModel};
use sm_accel::PrecisionMode;
use sm_core::assembly::{assemble, SubmatrixSpec};

fn main() {
    // Build a water system and carve out the combined submatrix of the
    // first 8 molecules (a scaled-down version of the paper's 32-molecule
    // offload target; pass --full for 32).
    let full = std::env::args().any(|a| a == "--full");
    let group: Vec<usize> = (0..if full { 32 } else { 8 }).collect();
    let water = WaterBox::cubic(2, 42);
    let basis = BasisSet::szv();
    let comm = SerialComm::new();
    let sys = build_system(&water, &basis, 0, 1, 1e-8);
    let (k_tilde, _, _) = orthogonalize_sparse(
        &sys.s,
        &sys.k,
        &NewtonSchulzOptions {
            eps_filter: 1e-9,
            max_iter: 100,
        },
        &comm,
    );
    let pattern = k_tilde.global_pattern(&comm);
    let dims = k_tilde.dims().clone();
    let spec = SubmatrixSpec::build(&pattern, &dims, &group);
    let a = assemble(&spec, &pattern, &dims, |r, c| k_tilde.block(r, c));
    let n_atoms = 3 * group.len();
    println!(
        "combined submatrix of {} molecules: dim {}",
        group.len(),
        spec.dim
    );

    let opts = PadeTraceOptions {
        iterations: 14,
        n_atoms,
    };

    // FP64 reference energy (converged).
    let t64 = pade3_sign_traced(&a, sys.mu, PrecisionMode::Fp64, &opts);
    let e_ref = t64.records.last().expect("iterations > 0").energy;

    println!("\n=== Fig. 12/13 analogue: per-iteration diagnostics ===");
    println!(
        "{:<10} {:>5} {:>14} {:>18}",
        "mode", "iter", "||X^2-I||_F", "dE [meV/atom]"
    );
    for mode in PrecisionMode::all() {
        let t = pade3_sign_traced(&a, sys.mu, mode, &opts);
        let de = energy_differences_mev_per_atom(&t, e_ref, n_atoms);
        for (r, d) in t.records.iter().zip(&de).skip(4) {
            println!(
                "{:<10} {:>5} {:>14.4e} {:>18.6}",
                mode.label(),
                r.iteration,
                r.involutority,
                d
            );
        }
        println!();
    }

    println!("=== Table I analogue (modelled throughputs, n = 3972) ===");
    println!(
        "{:<10} {:>12} {:>16} {:>14} {:>14}",
        "precision", "peak TF/s", "matmul TF/s", "sign TF/s", "GF/(W s)"
    );
    for row in gpu_table(&DeviceModel::rtx_2080_ti(), 3972, 7) {
        println!(
            "{:<10} {:>12.1} {:>16.1} {:>14.1} {:>14.0}",
            row.mode,
            row.peak_tflops,
            row.matmul_tflops,
            row.sign_tflops,
            row.gflops_per_watt()
        );
    }
    let f = fpga_row(&DeviceModel::stratix_10(), 3972);
    println!(
        "{:<10} {:>12.1} {:>16.1} {:>14.1} {:>14.0}",
        f.mode,
        f.peak_tflops,
        f.matmul_tflops,
        f.sign_tflops,
        f.gflops_per_watt()
    );
    println!("\nok");
}
