//! Canonical ensembles and finite temperature (paper Sec. IV-F/G).
//!
//! The submatrix method is intrinsically grand canonical: µ is an input.
//! This example runs the canonical mode, where Algorithm 1 bisects µ on the
//! stored submatrix eigendecompositions until the electron count matches a
//! target — including a doped (non-neutral) system and a finite-temperature
//! run where the signum is replaced by the Fermi function.
//!
//! Run with: `cargo run --release --example canonical_ensemble`

use cp2k_submatrix::prelude::*;

fn main() {
    let water = WaterBox::cubic(1, 7);
    let basis = BasisSet::szv();
    let comm = SerialComm::new();
    let sys = build_system(&water, &basis, 0, 1, 1e-10);
    let (k_tilde, _, _) = orthogonalize_sparse(
        &sys.s,
        &sys.k,
        &NewtonSchulzOptions {
            eps_filter: 1e-12,
            max_iter: 100,
        },
        &comm,
    );

    let neutral_electrons = 8.0 * water.n_molecules() as f64;

    // 1) Canonical, neutral: µ must land inside the gap near the mid-gap
    //    guess.
    let opts = SubmatrixOptions {
        ensemble: Ensemble::Canonical {
            n_electrons: neutral_electrons,
            tol: 1e-9,
            max_iter: 200,
        },
        ..Default::default()
    };
    let (d, report) = submatrix_density(&k_tilde, sys.mu, &opts, &comm);
    let n = sm_chem::energy::electron_count(&d, &comm);
    println!(
        "neutral canonical: target {neutral_electrons}, got {n:.6}, mu {:.5} \
         ({} bisection steps)",
        report.mu, report.bisect_iterations
    );

    // 2) Doped system: remove 8 electrons (two holes per 8 molecules).
    //    Grand-canonical at the neutral µ would be wrong; Algorithm 1
    //    shifts µ into the valence band edge.
    let doped = neutral_electrons - 8.0;
    let opts_doped = SubmatrixOptions {
        ensemble: Ensemble::Canonical {
            n_electrons: doped,
            tol: 1e-9,
            max_iter: 200,
        },
        solve: SolveOptions {
            // A small electronic temperature smooths the fractional
            // occupation at the band edge (doped systems are metallic-ish).
            kt: 0.02,
            ..SolveOptions::default()
        },
        ..Default::default()
    };
    let (d_doped, report_doped) = submatrix_density(&k_tilde, sys.mu, &opts_doped, &comm);
    let n_doped = sm_chem::energy::electron_count(&d_doped, &comm);
    println!(
        "doped canonical (kT = 0.02): target {doped}, got {n_doped:.6}, mu {:.5}",
        report_doped.mu
    );
    assert!(
        report_doped.mu < report.mu,
        "removing electrons must lower the chemical potential"
    );

    // 3) Finite temperature, grand canonical: occupation stays at the
    //    neutral value because µ sits mid-gap (Fermi factors of HOMO/LUMO
    //    are symmetric to first order).
    let opts_hot = SubmatrixOptions {
        solve: SolveOptions {
            kt: 0.01,
            ..SolveOptions::default()
        },
        ..Default::default()
    };
    let (d_hot, _) = submatrix_density(&k_tilde, sys.mu, &opts_hot, &comm);
    let n_hot = sm_chem::energy::electron_count(&d_hot, &comm);
    println!("finite-T grand canonical: {n_hot:.6} electrons at kT = 0.01");

    assert!((n - neutral_electrons).abs() < 1e-5);
    assert!((n_doped - doped).abs() < 1e-5);
    assert!((n_hot - neutral_electrons).abs() < 0.1);
    println!("ok");
}
