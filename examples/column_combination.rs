//! Combining block columns with clustering heuristics (paper Sec. IV-C2).
//!
//! Generating one submatrix per block column repeats work for columns with
//! overlapping neighborhoods. Combining spatially close columns into one
//! submatrix reduces the total `Σ n³` cost (Eq. 15's estimated speedup S).
//! This example compares the paper's two heuristics — k-means on molecule
//! centers and METIS-style partitioning of the sparsity graph — against
//! the naive consecutive grouping, then verifies the combined plan still
//! produces an accurate density matrix.
//!
//! Run with: `cargo run --release --example column_combination`

use cp2k_submatrix::prelude::*;
use sm_core::cluster::{graph, groups_from_assignment, kmeans};
use sm_core::plan::estimated_speedup;

fn main() {
    let water = WaterBox::cubic(2, 42);
    // Shortened decay ranges keep single-column submatrices genuinely
    // local at this laptop-scale box size (see DESIGN.md).
    let basis = BasisSet::szv().with_range_scale(0.55);
    let comm = SerialComm::new();
    let sys = build_system(&water, &basis, 0, 1, 1e-8);
    let (k_tilde_raw, _, _) = orthogonalize_sparse(
        &sys.s,
        &sys.k,
        &NewtonSchulzOptions {
            eps_filter: 1e-9,
            max_iter: 100,
        },
        &comm,
    );
    let mut k_tilde = k_tilde_raw;
    k_tilde.store_mut().filter(1e-6);
    let pattern = k_tilde.global_pattern(&comm);
    let dims = k_tilde.dims().clone();
    let singles = SubmatrixPlan::one_per_column(&pattern, &dims);
    println!(
        "{} molecules, single-column plan: {} submatrices, avg dim {:.0}, cost {:.3e}",
        water.n_molecules(),
        singles.len(),
        singles.avg_dim(),
        singles.total_cost()
    );

    let n_clusters = water.n_molecules() / 8;

    // Heuristic 1: k-means on molecule centers in real space.
    let points: Vec<[f64; 3]> = water.centers().iter().map(|c| [c.x, c.y, c.z]).collect();
    let km = kmeans::kmeans(&points, n_clusters, 1, 200);
    let km_groups = groups_from_assignment(&km.assignment, n_clusters);
    let km_plan = SubmatrixPlan::from_groups(&pattern, &dims, &km_groups);
    let s_km = estimated_speedup(&singles, &km_plan);
    println!(
        "k-means ({} clusters): {} submatrices, S = {s_km:.3}",
        n_clusters,
        km_plan.len()
    );

    // Heuristic 2: multilevel partitioning of the sparsity-pattern graph.
    let g = graph::Graph::from_pattern(&pattern);
    let part = graph::partition_kway(&g, n_clusters, &graph::PartitionOptions::default());
    let gp_groups = groups_from_assignment(&part, n_clusters);
    let gp_plan = SubmatrixPlan::from_groups(&pattern, &dims, &gp_groups);
    let s_gp = estimated_speedup(&singles, &gp_plan);
    println!(
        "graph partitioning: {} submatrices, S = {s_gp:.3}, edge cut {:.0}",
        gp_plan.len(),
        g.edge_cut(&part)
    );

    // Naive consecutive grouping for contrast.
    let cons = SubmatrixPlan::consecutive(&pattern, &dims, 8);
    let s_cons = estimated_speedup(&singles, &cons);
    println!(
        "consecutive (8): {} submatrices, S = {s_cons:.3}",
        cons.len()
    );

    // The paper's observation (Fig. 5): both heuristics land close to each
    // other.
    println!(
        "k-means vs graph agreement: |S_km − S_gp| = {:.3}",
        (s_km - s_gp).abs()
    );

    // Accuracy check: the combined plan must match the single-column plan.
    let kt_dense = k_tilde.to_dense(&comm);
    let reference = sm_chem::reference::DenseReference::new(&kt_dense).expect("symmetric");
    let e_ref = reference.band_energy(sys.mu);
    for (name, grouping) in [
        ("single", Grouping::OnePerColumn),
        ("k-means", Grouping::Explicit(km_groups)),
    ] {
        let opts = SubmatrixOptions {
            grouping,
            ..Default::default()
        };
        let (d, report) = submatrix_density(&k_tilde, sys.mu, &opts, &comm);
        let e = sm_chem::energy::band_energy(&d, &k_tilde, &comm);
        println!(
            "{name:<8} plan: {} submatrices, energy error {:.4} meV/atom",
            report.n_submatrices,
            sm_chem::energy::error_mev_per_atom(e, e_ref, water.n_atoms())
        );
    }
    println!("ok");
}
