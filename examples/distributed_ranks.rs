//! Distributed execution on the simulated MPI communicator.
//!
//! Runs the full pipeline — distributed matrix build, sparse Löwdin
//! orthogonalization via Cannon-multiplied Newton–Schulz, submatrix-method
//! purification with deduplicated block transfers — on a 2×2 rank grid of
//! OS threads, and verifies every rank agrees with the serial result.
//! Transfer statistics demonstrate the deduplication of paper Sec. IV-B.
//!
//! Run with: `cargo run --release --example distributed_ranks`

use cp2k_submatrix::prelude::*;

fn main() {
    let water = WaterBox::cubic(1, 42);
    let basis = BasisSet::szv();
    let ns = NewtonSchulzOptions {
        eps_filter: 1e-12,
        max_iter: 100,
    };

    // Serial reference.
    let comm = SerialComm::new();
    let sys = build_system(&water, &basis, 0, 1, 1e-10);
    let (kt, _, _) = orthogonalize_sparse(&sys.s, &sys.k, &ns, &comm);
    let (d_ref, _) = submatrix_density(&kt, sys.mu, &SubmatrixOptions::default(), &comm);
    let dense_ref = d_ref.to_dense(&comm);
    println!(
        "serial reference computed ({} blocks)",
        d_ref.local_nnz_blocks()
    );

    // The same computation on 4 ranks (2×2 process grid).
    let (results, stats) = run_ranks(4, |c| {
        let sys = build_system(&water, &basis, c.rank(), c.size(), 1e-10);
        let (kt, _, ortho) = orthogonalize_sparse(&sys.s, &sys.k, &ns, c);
        let (d, report) = submatrix_density(&kt, sys.mu, &SubmatrixOptions::default(), c);
        let dense = d.to_dense(c);
        (dense, report, ortho.iterations, c.rank())
    });

    for (dense, report, ortho_iters, rank) in &results {
        let diff = dense.max_abs_diff(&dense_ref);
        println!(
            "rank {rank}: ortho {ortho_iters} iters, {} submatrices planned, \
             dedup factor {:.2}, max diff to serial {diff:.2e}",
            report.n_submatrices,
            report.transfers.dedup_factor()
        );
        assert!(diff < 1e-10, "distributed result must match serial");
    }

    println!(
        "\ncommunicator traffic: {} messages, {:.2} MiB total",
        stats.total_msgs(),
        stats.total_bytes() as f64 / (1024.0 * 1024.0)
    );
    for r in 0..stats.size() {
        println!(
            "  rank {r}: {:>8} msgs, {:>10} bytes sent",
            stats.msgs_sent_by(r),
            stats.bytes_sent_by(r)
        );
    }
    println!("ok");
}
