//! The paper's future-work directions, implemented (Secs. V-C and VII).
//!
//! 1. **Selected columns** — the submatrix method only needs the columns of
//!    `sign(a − µI)` that originate from its own block columns; computing
//!    just those saves the O(n³) back-transform (paper conclusion:
//!    "selectively calculate selected elements of the sign function").
//! 2. **Sub-submatrix splitting** — applying the method a second time at
//!    element level inside an assembled submatrix (Sec. IV-C1).
//! 3. **Element-wise sparse solving** — running the sign iteration in CSR
//!    with per-step filtering, exploiting that DZVP submatrices are < 20%
//!    full element-wise (Sec. V-C).
//!
//! Run with: `cargo run --release --example future_work`

use cp2k_submatrix::prelude::*;
use sm_core::assembly::{assemble, SubmatrixSpec};
use sm_core::solver::SolveOptions as CoreSolveOptions;
use sm_core::split::solve_sign_via_split;
use sm_linalg::sparse::sparse_sign_iteration;

fn main() {
    let water = WaterBox::cubic(2, 42);
    let basis = BasisSet::szv().with_range_scale(0.55);
    let comm = SerialComm::new();
    let sys = build_system(&water, &basis, 0, 1, 1e-10);
    let (mut kt, _, _) = orthogonalize_sparse(
        &sys.s,
        &sys.k,
        &NewtonSchulzOptions {
            eps_filter: 1e-11,
            max_iter: 200,
        },
        &comm,
    );
    kt.store_mut().filter(1e-7);

    // --- 1. Selected-columns driver vs full driver ------------------------
    let t0 = std::time::Instant::now();
    let (d_full, _) = submatrix_density(&kt, sys.mu, &SubmatrixOptions::default(), &comm);
    let t_full = t0.elapsed().as_secs_f64();
    let opts_sel = SubmatrixOptions {
        use_selected_columns: true,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let (d_sel, _) = submatrix_density(&kt, sys.mu, &opts_sel, &comm);
    let t_sel = t0.elapsed().as_secs_f64();
    let diff = d_full.to_dense(&comm).max_abs_diff(&d_sel.to_dense(&comm));
    println!(
        "selected columns: {t_full:.3}s -> {t_sel:.3}s ({:.2}x), max diff {diff:.1e}",
        t_full / t_sel.max(1e-12)
    );
    assert!(diff < 1e-11);

    // --- 2. Sub-submatrix splitting on one assembled submatrix -----------
    let pattern = kt.global_pattern(&comm);
    let dims = kt.dims().clone();
    let mid = water.n_molecules() / 2;
    let spec = SubmatrixSpec::build(&pattern, &dims, &[mid]);
    let a = assemble(&spec, &pattern, &dims, |r, c| kt.block(r, c));
    let targets: Vec<usize> = (0..dims.size(mid))
        .map(|j| spec.offset_of(mid).expect("own column included") + j)
        .collect();
    let split = solve_sign_via_split(&a, sys.mu, &targets, 1e-8, &CoreSolveOptions::default())
        .expect("split solve");
    let full_cols = {
        let dec = sm_linalg::eigh::eigh(&a).expect("symmetric");
        sm_core::solver::sign_columns_from_decomposition(&dec, sys.mu, 0.0, &targets)
    };
    let split_err = split.columns.max_abs_diff(&full_cols);
    println!(
        "sub-submatrix split: parent dim {} -> sub dims {:?}..., cost {:.2e} vs {:.2e} \
         (parent³), column error {split_err:.2e}",
        spec.dim,
        &split.sub_dims[..split.sub_dims.len().min(3)],
        split.total_cost,
        (spec.dim as f64).powi(3)
    );

    // --- 3. Element-wise sparse iteration on the same submatrix ----------
    let sparse = sparse_sign_iteration(&a, sys.mu, 2, 1e-10, 1e-8, 100).expect("sparse");
    let dense_ref = sm_linalg::sign::sign_eig(&{
        let mut s = a.clone();
        s.shift_diag(-sys.mu);
        s
    })
    .expect("symmetric");
    println!(
        "element-sparse iteration: {} iterations, {:.2e} flops, final fill {:.2}, \
         max diff {:.2e}",
        sparse.iterations,
        sparse.flops as f64,
        sparse.final_fill,
        sparse.sign.max_abs_diff(&dense_ref)
    );
    println!("ok");
}
