//! Batched multi-job execution over one shared submatrix engine.
//!
//! A density-matrix service sees many concurrent requests with mixed
//! sizes, ensembles and solvers — and with recurring sparsity patterns.
//! `JobQueue` plans each distinct pattern once (shared cache), schedules
//! the batch longest-job-first over the shared pool, and returns per-job
//! reports.
//!
//! Run with: `cargo run --release --example job_queue`

use cp2k_submatrix::prelude::*;

fn water_system(nrep: usize, seed: u64, range_scale: f64) -> (DbcsrMatrix, f64) {
    let water = WaterBox::cubic(nrep, seed);
    let basis = BasisSet::szv().with_range_scale(range_scale);
    let comm = SerialComm::new();
    let sys = build_system(&water, &basis, 0, 1, 1e-10);
    let ns = NewtonSchulzOptions {
        eps_filter: 1e-12,
        max_iter: 200,
    };
    let (kt, _, _) = orthogonalize_sparse(&sys.s, &sys.k, &ns, &comm);
    (kt, sys.mu)
}

fn main() {
    let comm = SerialComm::new();
    let (kt_a, mu_a) = water_system(1, 42, 1.0);
    // Filter system B so its block pattern differs from A's: small dense
    // systems orthogonalize to the same fully-dense pattern, which the
    // fingerprint would (correctly) dedupe onto one plan.
    let (mut kt_b, mu_b) = water_system(1, 7, 0.7);
    kt_b.store_mut().filter(1e-2);

    // A mixed batch: two density jobs on the same pattern (same system,
    // different values), a sign job, and a canonical-ensemble job.
    let mut kt_a_shifted = kt_a.clone();
    sm_dbcsr::ops::shift_diag(&mut kt_a_shifted, 1e-3);
    let n_elec_a = 8.0 * 32.0; // 8 electrons per molecule, 32 molecules

    let jobs = vec![
        MatrixJob::density("water-A/scf-step-0", kt_a.clone(), mu_a),
        MatrixJob::density("water-A/scf-step-1", kt_a_shifted, mu_a),
        MatrixJob {
            name: "water-B/sign".into(),
            matrix: kt_b.clone(),
            mu0: mu_b,
            numeric: NumericOptions::default(),
            output: JobOutput::Sign,
        },
        MatrixJob {
            name: "water-A/canonical".into(),
            matrix: kt_a.clone(),
            mu0: mu_a,
            numeric: NumericOptions {
                ensemble: Ensemble::Canonical {
                    n_electrons: n_elec_a,
                    tol: 1e-9,
                    max_iter: 200,
                },
                ..NumericOptions::default()
            },
            output: JobOutput::Density,
        },
    ];

    let queue = JobQueue::default();
    let results = queue.run(jobs);

    println!(
        "{:<22} {:>6} {:>9} {:>10} {:>9}",
        "job", "subm", "max_dim", "seconds", "mu"
    );
    for r in &results {
        println!(
            "{:<22} {:>6} {:>9} {:>10.4} {:>9.4}",
            r.name, r.report.n_submatrices, r.report.max_dim, r.seconds, r.report.mu
        );
    }
    let stats = queue.engine().stats();
    println!(
        "\n{} jobs, {} distinct patterns planned, {} cache hits",
        results.len(),
        stats.symbolic_builds,
        stats.cache_hits
    );
    assert_eq!(stats.symbolic_builds, 2, "two distinct patterns in batch");

    // Electron counts of the two same-pattern density jobs stay physical.
    for r in &results[..2] {
        let n = 2.0 * sm_dbcsr::ops::trace(&r.result, &comm);
        println!("{}: {:.4} electrons", r.name, n);
        assert!(n > 0.0);
    }
    println!("ok");
}
