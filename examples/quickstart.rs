//! Quickstart: compute a density matrix with the submatrix method.
//!
//! Builds a periodic liquid-water system, Löwdin-orthogonalizes the
//! Kohn–Sham matrix, purifies it into the one-particle density matrix with
//! the submatrix method (paper Eq. 16 + Sec. III), and checks the result
//! against the dense reference and the Newton–Schulz baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use cp2k_submatrix::prelude::*;

fn main() {
    // The paper's benchmark family: a 32-molecule cell replicated NREP³
    // times. NREP = 1 keeps the dense cross-check cheap.
    let water = WaterBox::cubic(1, 42);
    let basis = BasisSet::szv();
    println!(
        "system: {} H2O molecules, {} atoms, {} basis functions",
        water.n_molecules(),
        water.n_atoms(),
        water.n_molecules() * basis.n_per_molecule()
    );

    let comm = SerialComm::new();
    let sys = build_system(&water, &basis, 0, 1, 1e-10);
    println!("chemical potential (mid-gap): mu = {:.4}", sys.mu);

    // Löwdin orthogonalization K̃ = S^{-1/2} K S^{-1/2} with the sparse
    // Newton–Schulz inverse square root.
    let ns_opts = NewtonSchulzOptions {
        eps_filter: 1e-12,
        max_iter: 100,
    };
    let (k_tilde, _, ortho_report) = orthogonalize_sparse(&sys.s, &sys.k, &ns_opts, &comm);
    println!(
        "orthogonalization: {} NS iterations, residual {:.2e}",
        ortho_report.iterations, ortho_report.residual
    );

    // The submatrix method.
    let (density, report) =
        submatrix_density(&k_tilde, sys.mu, &SubmatrixOptions::default(), &comm);
    println!(
        "submatrix method: {} submatrices, dims avg {:.0} / max {}",
        report.n_submatrices, report.avg_dim, report.max_dim
    );

    // Observables.
    let n_elec = sm_chem::energy::electron_count(&density, &comm);
    let e_band = sm_chem::energy::band_energy(&density, &k_tilde, &comm);
    println!(
        "electrons: {n_elec:.6} (expected {})",
        8 * water.n_molecules()
    );
    println!("band energy: {e_band:.6} Ha");

    // Dense reference for comparison.
    let kt_dense = k_tilde.to_dense(&comm);
    let reference = sm_chem::reference::DenseReference::new(&kt_dense).expect("symmetric");
    let e_ref = reference.band_energy(sys.mu);
    let err = sm_chem::energy::error_mev_per_atom(e_band, e_ref, water.n_atoms());
    println!("error vs dense reference: {err:.4} meV/atom");

    // Newton–Schulz baseline on the same matrix.
    let (d_ns, ns_report) = newton_schulz_density(
        &k_tilde,
        sys.mu,
        &NewtonSchulzOptions {
            eps_filter: 1e-10,
            max_iter: 100,
        },
        &comm,
    );
    let e_ns = sm_chem::energy::band_energy(&d_ns, &k_tilde, &comm);
    println!(
        "newton-schulz baseline: {} iterations, error {:.4} meV/atom",
        ns_report.iterations,
        sm_chem::energy::error_mev_per_atom(e_ns, e_ref, water.n_atoms())
    );

    assert!(err < 50.0, "submatrix energy error unexpectedly large");
    println!("ok");
}
