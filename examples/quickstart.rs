//! Quickstart: compute a density matrix with the submatrix method.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! This is the first of the walkthroughs referenced from the README
//! (`quickstart` → `scf_loop` → `scheduler_batch` →
//! `scf_service_batch`). It traces one density-matrix evaluation end to
//! end, in five steps that mirror the paper's pipeline:
//!
//! 1. **Build a system.** `WaterBox::cubic(nrep, seed)` generates the
//!    paper's benchmark family — a 32-molecule periodic cell replicated
//!    `nrep³` times — and `build_system` assembles the overlap matrix `S`
//!    and a gapped Kohn–Sham matrix `K` directly in block-sparse (DBCSR)
//!    form, one block per molecule. `sys.mu` is the mid-gap chemical
//!    potential.
//! 2. **Orthogonalize.** The submatrix method needs the orthogonalized
//!    operator `K̃ = S^{-1/2} K S^{-1/2}`; `orthogonalize_sparse` computes
//!    `S^{-1/2}` with the sparse Newton–Schulz inverse square root,
//!    filtering small blocks at `eps_filter`.
//! 3. **Purify.** `submatrix_density` evaluates `D̃ = (I − sign(K̃ − µI))/2`
//!    (paper Eq. 16): for each block column it assembles the dense
//!    principal submatrix induced by the column's sparsity pattern, runs a
//!    dense sign solve on it, and keeps the result's relevant columns.
//!    The report tells how many submatrices were built and how large.
//! 4. **Check observables.** The electron count `2·Tr(D̃)` must hit the
//!    system's electron number; the band energy `2·Tr(D̃K̃)` is the paper's
//!    accuracy metric, compared in meV/atom against a dense
//!    diagonalization reference.
//! 5. **Baseline.** The same density via Newton–Schulz sign iteration —
//!    the method CP2K used before — for an error/effort comparison.
//!
//! Where to next: `scf_loop` wraps step 3 in a self-consistency loop and
//! shows why the persistent engine's plan caching matters.

use cp2k_submatrix::prelude::*;

fn main() {
    // The paper's benchmark family: a 32-molecule cell replicated NREP³
    // times. NREP = 1 keeps the dense cross-check cheap.
    let water = WaterBox::cubic(1, 42);
    let basis = BasisSet::szv();
    println!(
        "system: {} H2O molecules, {} atoms, {} basis functions",
        water.n_molecules(),
        water.n_atoms(),
        water.n_molecules() * basis.n_per_molecule()
    );

    let comm = SerialComm::new();
    let sys = build_system(&water, &basis, 0, 1, 1e-10);
    println!("chemical potential (mid-gap): mu = {:.4}", sys.mu);

    // Löwdin orthogonalization K̃ = S^{-1/2} K S^{-1/2} with the sparse
    // Newton–Schulz inverse square root.
    let ns_opts = NewtonSchulzOptions {
        eps_filter: 1e-12,
        max_iter: 100,
    };
    let (k_tilde, _, ortho_report) = orthogonalize_sparse(&sys.s, &sys.k, &ns_opts, &comm);
    println!(
        "orthogonalization: {} NS iterations, residual {:.2e}",
        ortho_report.iterations, ortho_report.residual
    );

    // The submatrix method.
    let (density, report) =
        submatrix_density(&k_tilde, sys.mu, &SubmatrixOptions::default(), &comm);
    println!(
        "submatrix method: {} submatrices, dims avg {:.0} / max {}",
        report.n_submatrices, report.avg_dim, report.max_dim
    );

    // Observables.
    let n_elec = sm_chem::energy::electron_count(&density, &comm);
    let e_band = sm_chem::energy::band_energy(&density, &k_tilde, &comm);
    println!(
        "electrons: {n_elec:.6} (expected {})",
        8 * water.n_molecules()
    );
    println!("band energy: {e_band:.6} Ha");

    // Dense reference for comparison.
    let kt_dense = k_tilde.to_dense(&comm);
    let reference = sm_chem::reference::DenseReference::new(&kt_dense).expect("symmetric");
    let e_ref = reference.band_energy(sys.mu);
    let err = sm_chem::energy::error_mev_per_atom(e_band, e_ref, water.n_atoms());
    println!("error vs dense reference: {err:.4} meV/atom");

    // Newton–Schulz baseline on the same matrix.
    let (d_ns, ns_report) = newton_schulz_density(
        &k_tilde,
        sys.mu,
        &NewtonSchulzOptions {
            eps_filter: 1e-10,
            max_iter: 100,
        },
        &comm,
    );
    let e_ns = sm_chem::energy::band_energy(&d_ns, &k_tilde, &comm);
    println!(
        "newton-schulz baseline: {} iterations, error {:.4} meV/atom",
        ns_report.iterations,
        sm_chem::energy::error_mev_per_atom(e_ns, e_ref, water.n_atoms())
    );

    assert!(err < 50.0, "submatrix energy error unexpectedly large");
    println!("ok");
}
