//! A miniature self-consistent-field loop on the persistent submatrix
//! engine.
//!
//! Run with: `cargo run --release --example scf_loop`
//!
//! Second walkthrough (after `quickstart`, before `scheduler_batch` and
//! `scf_service_batch`). In CP2K the density matrix is recomputed every
//! SCF step (and every MD step) — purification is the inner kernel of a
//! fixed-point iteration in which the Kohn–Sham matrix depends on the
//! density. The key structural fact: the **sparsity pattern stays fixed
//! while values change**, so all pattern-dependent work can be done once.
//!
//! The walkthrough:
//!
//! 1. **Build + orthogonalize** a water system exactly as in
//!    `quickstart`, yielding `K̃₀` and the electron target.
//! 2. **Run the driver.** [`sm_chem::ScfDriver`] closes the
//!    self-consistency loop with a damped model feedback: each iteration
//!    evaluates the density on the engine (canonical ensemble — µ is
//!    bisected to hold the electron count), shifts the onsite potential
//!    by the local-charge deviation, and mixes linearly for stability.
//!    The driver's engine plans the submatrix method **once**, in
//!    iteration 1; every later density build is a pure numeric-phase
//!    replay of that cached plan.
//! 3. **Read the table.** The `plan` column prints `build` exactly once,
//!    then `cache` forever — the amortization the engine's
//!    symbolic/numeric phase split exists for. The run asserts
//!    `symbolic_builds == 1` and electron conservation at the end.
//!
//! Where to next: `scf_service_batch` runs many of these loops
//! concurrently on one rank world through `sm_pipeline::ScfService`.

use cp2k_submatrix::prelude::*;
use sm_chem::{ScfDriver, ScfOptions};

fn main() {
    let water = WaterBox::cubic(1, 42);
    let basis = BasisSet::szv();
    let comm = SerialComm::new();
    let sys = build_system(&water, &basis, 0, 1, 1e-10);
    let ns = NewtonSchulzOptions {
        eps_filter: 1e-12,
        max_iter: 200,
    };
    let (kt0, _, _) = orthogonalize_sparse(&sys.s, &sys.k, &ns, &comm);
    let n_elec = 8.0 * water.n_molecules() as f64;

    let driver = ScfDriver::new(ScfOptions::default());
    let result = driver.run(&kt0, sys.mu, n_elec, &comm);

    println!(
        "{:>4} {:>16} {:>14} {:>12} {:>6}",
        "iter", "band energy", "dE", "electrons", "plan"
    );
    for (i, it) in result.iterations.iter().enumerate() {
        println!(
            "{:>4} {:>16.8} {:>14.2e} {:>12.6} {:>6}",
            i + 1,
            it.energy,
            it.de,
            it.electrons,
            if it.plan_cached { "cache" } else { "build" }
        );
    }
    let last = result.iterations.last().expect("at least one iteration");
    if result.converged {
        println!(
            "\nconverged after {} SCF iterations (mu = {:.5})",
            result.iterations.len(),
            last.mu
        );
    } else {
        println!("\nnot converged within the budget (dE = {:.2e})", last.de);
    }
    println!(
        "symbolic plans built: {} ({} cache hits across {} iterations)",
        result.symbolic_builds,
        result.cache_hits,
        result.iterations.len()
    );

    // Final sanity: electrons conserved through the whole loop.
    let final_electrons = sm_chem::energy::electron_count(&result.density, &comm);
    assert!((final_electrons - n_elec).abs() < 1e-5);
    assert_eq!(result.symbolic_builds, 1, "pattern is fixed: one plan");
    println!("final electron count: {final_electrons:.6} (target {n_elec})");
    println!("ok");
}
