//! A miniature self-consistent-field loop driven by the submatrix method.
//!
//! In CP2K the density matrix is recomputed every SCF step (and every MD
//! step) — purification is the inner kernel of a fixed-point iteration in
//! which the Kohn–Sham matrix depends on the density. This example closes
//! that loop with a simple model feedback (onsite potential shifted by the
//! local charge, linear mixing) and shows the submatrix method converging
//! the self-consistency while conserving electrons.
//!
//! Run with: `cargo run --release --example scf_loop`

use cp2k_submatrix::prelude::*;
use sm_dbcsr::ops;

fn main() {
    let water = WaterBox::cubic(1, 42);
    let basis = BasisSet::szv();
    let comm = SerialComm::new();
    let sys = build_system(&water, &basis, 0, 1, 1e-10);
    let ns = NewtonSchulzOptions {
        eps_filter: 1e-12,
        max_iter: 200,
    };
    let (kt0, _, _) = orthogonalize_sparse(&sys.s, &sys.k, &ns, &comm);
    let n_elec = 8.0 * water.n_molecules() as f64;

    // SCF parameters of the model feedback: the diagonal of K̃ shifts with
    // the deviation of the local occupation from its average (a crude
    // Hartree-like term), mixed linearly for stability.
    let coupling = 0.10;
    let mixing = 0.5;
    let nb = kt0.nb();
    let bs = kt0.dims().size(0);
    let avg_occ = n_elec / (2.0 * kt0.n() as f64);

    let mut kt = kt0.clone();
    let mut previous_energy = f64::INFINITY;
    println!("{:>4} {:>16} {:>14} {:>12}", "iter", "band energy", "dE", "electrons");
    for it in 1..=30 {
        let opts = SubmatrixOptions {
            ensemble: Ensemble::Canonical {
                n_electrons: n_elec,
                tol: 1e-9,
                max_iter: 200,
            },
            ..Default::default()
        };
        let (d, report) = submatrix_density(&kt, sys.mu, &opts, &comm);
        let energy = sm_chem::energy::band_energy(&d, &kt0, &comm);
        let electrons = sm_chem::energy::electron_count(&d, &comm);
        let de = energy - previous_energy;
        println!("{it:>4} {energy:>16.8} {de:>14.2e} {electrons:>12.6}");

        if de.abs() < 1e-8 {
            println!("\nconverged after {it} SCF iterations (mu = {:.5})", report.mu);
            break;
        }
        previous_energy = energy;

        // Feedback: new K̃ = K̃₀ + coupling·diag(occupation − avg), mixed.
        let mut kt_new = kt0.clone();
        for b in 0..nb {
            let occ_block = d.block(b, b).expect("diagonal density block");
            let mut kb = kt_new
                .block(b, b)
                .expect("diagonal KS block")
                .clone();
            for i in 0..bs {
                kb[(i, i)] += coupling * (occ_block[(i, i)] - avg_occ);
            }
            kt_new.store_mut().insert((b, b), kb);
        }
        // Linear mixing: K̃ ← (1−α)·K̃ + α·K̃_new.
        ops::scale(&mut kt, 1.0 - mixing);
        ops::axpy(&mut kt, mixing, &kt_new);
    }

    // Final sanity: electrons conserved through the whole loop.
    let (d, _) = submatrix_density(
        &kt,
        sys.mu,
        &SubmatrixOptions {
            ensemble: Ensemble::Canonical {
                n_electrons: n_elec,
                tol: 1e-9,
                max_iter: 200,
            },
            ..Default::default()
        },
        &comm,
    );
    let final_electrons = sm_chem::energy::electron_count(&d, &comm);
    assert!((final_electrons - n_elec).abs() < 1e-5);
    println!("final electron count: {final_electrons:.6} (target {n_elec})");
    println!("ok");
}
