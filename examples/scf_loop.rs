//! A miniature self-consistent-field loop on the persistent submatrix
//! engine.
//!
//! In CP2K the density matrix is recomputed every SCF step (and every MD
//! step) — purification is the inner kernel of a fixed-point iteration in
//! which the Kohn–Sham matrix depends on the density. The sparsity pattern
//! stays fixed while values change, so [`sm_chem::ScfDriver`] plans the
//! submatrix method **once** and replays the cached plan numerically every
//! iteration; this example prints the convergence table plus the
//! plan-reuse statistics that make the amortization visible.
//!
//! Run with: `cargo run --release --example scf_loop`

use cp2k_submatrix::prelude::*;
use sm_chem::{ScfDriver, ScfOptions};

fn main() {
    let water = WaterBox::cubic(1, 42);
    let basis = BasisSet::szv();
    let comm = SerialComm::new();
    let sys = build_system(&water, &basis, 0, 1, 1e-10);
    let ns = NewtonSchulzOptions {
        eps_filter: 1e-12,
        max_iter: 200,
    };
    let (kt0, _, _) = orthogonalize_sparse(&sys.s, &sys.k, &ns, &comm);
    let n_elec = 8.0 * water.n_molecules() as f64;

    let driver = ScfDriver::new(ScfOptions::default());
    let result = driver.run(&kt0, sys.mu, n_elec, &comm);

    println!(
        "{:>4} {:>16} {:>14} {:>12} {:>6}",
        "iter", "band energy", "dE", "electrons", "plan"
    );
    for (i, it) in result.iterations.iter().enumerate() {
        println!(
            "{:>4} {:>16.8} {:>14.2e} {:>12.6} {:>6}",
            i + 1,
            it.energy,
            it.de,
            it.electrons,
            if it.plan_cached { "cache" } else { "build" }
        );
    }
    let last = result.iterations.last().expect("at least one iteration");
    if result.converged {
        println!(
            "\nconverged after {} SCF iterations (mu = {:.5})",
            result.iterations.len(),
            last.mu
        );
    } else {
        println!("\nnot converged within the budget (dE = {:.2e})", last.de);
    }
    println!(
        "symbolic plans built: {} ({} cache hits across {} iterations)",
        result.symbolic_builds,
        result.cache_hits,
        result.iterations.len()
    );

    // Final sanity: electrons conserved through the whole loop.
    let final_electrons = sm_chem::energy::electron_count(&result.density, &comm);
    assert!((final_electrons - n_elec).abs() < 1e-5);
    assert_eq!(result.symbolic_builds, 1, "pattern is fixed: one plan");
    println!("final electron count: {final_electrons:.6} (target {n_elec})");
    println!("ok");
}
