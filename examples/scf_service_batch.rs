//! Batched multi-system SCF service: many chemical systems, one
//! scheduler, one plan cache.
//!
//! Run with: `cargo run --release --example scf_service_batch`
//!
//! This is the capstone of the pipeline walkthroughs (`quickstart` →
//! `scf_loop` → `scheduler_batch` → here): a production-shaped service
//! that self-consistently solves a *batch* of independent chemical
//! systems concurrently on one simulated rank world.
//!
//! The walkthrough proceeds in three steps:
//!
//! 1. **Build the batch.** Each [`ScfJobSpec`] is an independent system —
//!    here three periodic water boxes with different random seeds — with
//!    its own convergence budget and ensemble.
//! 2. **Run the service.** `ScfService::run(world, specs)` estimates each
//!    system's *per-iteration* submatrix cost from its sparsity pattern,
//!    multiplies by the iteration budget, carves the world into per-job
//!    subcommunicator groups (LPT + proportional ranks), and drives every
//!    system's full `ScfDriver` loop collectively on its group — with
//!    epoch-based work stealing re-dealing drained ranks onto straggler
//!    systems, and every plan going through the one shared engine cache.
//! 3. **Resubmit, as an MD trajectory would.** The same systems come back
//!    next MD step with perturbed values but identical sparsity patterns;
//!    the schedule is a pure function of those patterns, so every group
//!    shape repeats and the second batch does **zero** symbolic work —
//!    the service-level form of the paper's plan-reuse argument.
//! 4. **Kill and restart.** The engine spills its plan cache to a
//!    versioned manifest (`SubmatrixEngine::export_plans`), the process
//!    "dies", and a fresh engine in a resident [`StreamingScfService`]
//!    imports the manifest and replays the batch through an admission
//!    window — the warm daemon replans **nothing** (`symbolic_builds ==
//!    0`): plan reuse survives process death. Inspect the spill with
//!    `smdoctor cache <manifest>`.
//!
//! Every job returns its final density plus per-iteration SCF telemetry
//! (iterations, convergence, energy, electron count, per-iteration wire
//! bytes) and its scheduler placement (group size, epoch, stolen ranks).

use std::sync::Arc;

use cp2k_submatrix::prelude::*;
use sm_pipeline::{
    Priority, RankBudget, ScfJobSpec, ScfOutcomeExt, ScfService, SchedulerOutcome, ServiceConfig,
    StreamingScfService,
};

/// Orthogonalized Kohn–Sham matrix + chemical data of one water system.
fn system(seed: u64) -> (sm_dbcsr::DbcsrMatrix, f64, f64) {
    let water = WaterBox::cubic(1, seed);
    let basis = BasisSet::szv();
    let comm = SerialComm::new();
    let sys = build_system(&water, &basis, 0, 1, 1e-10);
    let ns = NewtonSchulzOptions {
        eps_filter: 1e-12,
        max_iter: 200,
    };
    let (kt, _, _) = orthogonalize_sparse(&sys.s, &sys.k, &ns, &comm);
    let n_elec = 8.0 * water.n_molecules() as f64;
    (kt, sys.mu, n_elec)
}

fn print_results(outcome: &SchedulerOutcome) {
    println!(
        "{:>12} {:>6} {:>6} {:>7} {:>5} {:>5} {:>16} {:>11} {:>9}",
        "system", "ranks", "epoch", "stolen", "iter", "conv", "energy", "electrons", "kB wire"
    );
    for r in &outcome.results {
        let scf = r.scf.as_ref().expect("SCF jobs carry SCF telemetry");
        println!(
            "{:>12} {:>6} {:>6} {:>7} {:>5} {:>5} {:>16.8} {:>11.4} {:>9.1}",
            r.name,
            r.group_size,
            r.epoch,
            r.stolen_ranks,
            scf.iterations,
            if scf.converged { "yes" } else { "no" },
            scf.final_energy,
            scf.final_electrons,
            r.value_bytes() as f64 / 1024.0,
        );
    }
}

fn main() {
    // Step 1: the batch — three independent water systems, canonical
    // ensemble (the driver adjusts µ to hold the electron count).
    let mut specs = Vec::new();
    for (name, seed) in [("water-42", 42u64), ("water-7", 7), ("water-1234", 1234)] {
        let (kt, mu, ne) = system(seed);
        // ScfJobSpec carries the full ScfOptions; `scf.engine` is ignored —
        // the service's shared engine (built below) governs the symbolic
        // phase for every job.
        specs.push(ScfJobSpec::new(name, kt, mu, ne));
    }
    println!("batch: {} SCF systems, canonical ensemble", specs.len());

    // Step 2: run on a 6-rank world over one shared engine.
    let engine = Arc::new(SubmatrixEngine::new(EngineOptions {
        parallel: false,
        ..EngineOptions::default()
    }));
    let service = ScfService::new(engine.clone(), RankBudget::default());
    let world = 6;
    let outcome = service.run(world, specs.clone());

    println!("\nMD step 1 (cold cache):");
    print_results(&outcome);
    let stats1 = engine.stats();
    println!(
        "plan cache: {} symbolic builds, {} hits across {} SCF iterations",
        stats1.symbolic_builds,
        stats1.cache_hits,
        outcome.results.total_iterations()
    );
    assert_eq!(outcome.results.converged_jobs(), outcome.results.len());

    // Step 3: the MD-step resubmission — same patterns, perturbed values.
    // The epoch schedule is a pure function of the (unchanged) pattern
    // costs, so every job lands on the same-shaped group and every
    // (fingerprint, rank, size) plan key is warm: zero symbolic work.
    for spec in &mut specs {
        sm_dbcsr::ops::scale(&mut spec.kt0, 1.0 + 1e-3);
    }
    let outcome2 = service.run(world, specs.clone());
    println!("\nMD step 2 (same patterns, new values):");
    print_results(&outcome2);
    let stats2 = engine.stats();
    println!(
        "plan cache: {} new symbolic builds, {} total hits",
        stats2.symbolic_builds - stats1.symbolic_builds,
        stats2.cache_hits
    );
    assert_eq!(
        stats2.symbolic_builds, stats1.symbolic_builds,
        "resubmitted batch must plan zero times"
    );
    for r in &outcome2.results {
        assert!(
            r.report.plan_cached,
            "job '{}' re-planned on resubmission",
            r.name
        );
        assert!(r.scf.as_ref().unwrap().converged);
    }
    println!("\nresubmitted batch planned zero times, all systems converged: ok");

    // Step 4: kill and restart. Spill the plan cache to a manifest, stand
    // up a fresh engine (a new process in miniature) inside the resident
    // streaming service, import, and replay the batch through an
    // admission window — warm from the first SCF iteration.
    let manifest = std::env::temp_dir().join("scf_service_batch.smplans");
    let exported = engine
        .export_plans(&manifest)
        .expect("export plan manifest");
    println!(
        "\nspilled {exported} plan(s) to {} — restarting on a fresh engine",
        manifest.display()
    );

    let engine2 = Arc::new(SubmatrixEngine::new(EngineOptions {
        parallel: false,
        ..EngineOptions::default()
    }));
    let imported = engine2
        .import_plans(&manifest)
        .expect("import plan manifest");
    assert_eq!(imported, exported, "every spilled plan must restore");
    let mut daemon = StreamingScfService::new(
        Arc::clone(&engine2),
        ServiceConfig {
            world_size: world,
            trace_label: "md-restart".to_string(),
            ..ServiceConfig::default()
        },
    );
    for (spec, priority) in specs
        .into_iter()
        .zip([Priority::High, Priority::Normal, Priority::Low])
    {
        daemon.submit(spec, priority).expect("admission");
    }
    let window = daemon.close_window().expect("restart window");
    println!("\nrestarted daemon, window 0 (imported plans):");
    print_results(&window.outcome);
    let warm = engine2.stats();
    println!(
        "plan cache after restart: {} symbolic builds, {} hits",
        warm.symbolic_builds, warm.cache_hits
    );
    assert_eq!(
        warm.symbolic_builds, 0,
        "restarted service must replan nothing"
    );
    for r in &window.outcome.results {
        assert!(
            r.report.plan_cached,
            "job '{}' re-planned after the restart",
            r.name
        );
        assert!(r.scf.as_ref().unwrap().converged);
    }
    println!("\nwarm restart planned zero times across process death: ok");
}
