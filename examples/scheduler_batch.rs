//! A mixed job batch through the distributed scheduler.
//!
//! Builds two water systems, queues sign and density jobs of different
//! sizes, and runs the batch on an 8-rank world: the scheduler estimates
//! each job's submatrix work, carves the world into per-job
//! subcommunicator groups sized proportionally to that estimate, runs
//! every job's plan/execute collectively on its group over one shared
//! engine, and gathers results (with per-job comm/compute telemetry) back
//! to rank 0. The same batch through the serial `JobQueue` must agree
//! bitwise — which this example checks.
//!
//! Run with: `cargo run --release --example scheduler_batch`

use cp2k_submatrix::prelude::*;

fn water_system(nrep: usize, seed: u64, range_scale: f64) -> (DbcsrMatrix, f64) {
    let water = WaterBox::cubic(nrep, seed);
    let basis = BasisSet::szv().with_range_scale(range_scale);
    let comm = SerialComm::new();
    let sys = build_system(&water, &basis, 0, 1, 1e-10);
    let ns = NewtonSchulzOptions {
        eps_filter: 1e-12,
        max_iter: 200,
    };
    let (kt, _, _) = orthogonalize_sparse(&sys.s, &sys.k, &ns, &comm);
    (kt, sys.mu)
}

fn main() {
    let (kt_a, mu_a) = water_system(1, 42, 1.0);
    let (mut kt_b, mu_b) = water_system(1, 7, 0.7);
    kt_b.store_mut().filter(1e-2);
    let mut kt_a_shifted = kt_a.clone();
    sm_dbcsr::ops::shift_diag(&mut kt_a_shifted, 1e-3);

    let jobs = vec![
        MatrixJob::density("water-A/density", kt_a.clone(), mu_a),
        MatrixJob {
            name: "water-A/sign".into(),
            matrix: kt_a_shifted,
            mu0: mu_a,
            numeric: NumericOptions::default(),
            output: JobOutput::Sign,
        },
        MatrixJob::density("water-B/density", kt_b.clone(), mu_b),
        MatrixJob {
            name: "water-B/sign".into(),
            matrix: kt_b,
            mu0: mu_b,
            numeric: NumericOptions::default(),
            output: JobOutput::Sign,
        },
    ];

    // Serial reference on one process.
    let serial = JobQueue::default().run(jobs.clone());

    // The same batch on an 8-rank world carved into per-job groups.
    let world = 8;
    let scheduler = Scheduler::default();
    let outcome = scheduler.run(world, jobs);

    println!("schedule over {world} ranks:");
    for (g, group) in outcome.plan.groups.iter().enumerate() {
        let names: Vec<&str> = group
            .jobs
            .iter()
            .map(|&j| outcome.results[j].name.as_str())
            .collect();
        println!(
            "  group {g}: ranks {:>2}..{:<2} est.cost {:>10.3e}  jobs {:?}",
            group.ranks.start, group.ranks.end, group.est_cost, names
        );
    }

    println!(
        "\n{:<18} {:>6} {:>10} {:>12} {:>8} {:>7}",
        "job", "ranks", "wall [s]", "comm [B]", "msgs", "cached"
    );
    let comm = SerialComm::new();
    for (res, ref_res) in outcome.results.iter().zip(&serial) {
        assert!(
            res.result
                .to_dense(&comm)
                .allclose(&ref_res.result.to_dense(&comm), 0.0),
            "scheduler deviates from the serial queue on '{}'",
            res.name
        );
        println!(
            "{:<18} {:>6} {:>10.5} {:>12} {:>8} {:>7}",
            res.name,
            res.group_size,
            res.seconds,
            res.comm_bytes,
            res.comm_msgs,
            res.plan_cached(),
        );
    }
    println!(
        "\nall {} scheduled results bitwise-identical to the serial JobQueue",
        serial.len()
    );
    let stats = scheduler.engine().stats();
    println!(
        "shared engine: {} plans built, {} cache hits, {} evictions",
        stats.symbolic_builds, stats.cache_hits, stats.evictions
    );
    let steals = outcome.steal_stats;
    println!(
        "epoch plan: {} epoch(s), {} stolen job(s) on {} re-dealt rank(s), \
         est. idle recovered {:.3e} cost units",
        steals.epochs,
        steals.stolen_jobs,
        steals.stolen_ranks,
        steals.est_idle_cost_recovered(),
    );
}
