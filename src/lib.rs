//! # cp2k-submatrix — reproduction of the submatrix method (Lass et al., SC 2020)
//!
//! A from-scratch Rust implementation of *"A Submatrix-Based Method for
//! Approximate Matrix Function Evaluation in the Quantum Chemistry Code
//! CP2K"*, including every substrate the paper builds on:
//!
//! | Crate | Role |
//! |---|---|
//! | [`linalg`] | dense BLAS/LAPACK subset: GEMM, symmetric eigensolver, sign function, inverse roots |
//! | [`comsim`] | simulated MPI: rank-per-thread communicator + analytic cluster-time model |
//! | [`dbcsr`] | distributed block-compressed sparse matrices with Cannon multiplication (libDBCSR) |
//! | [`chem`] | synthetic liquid-water systems, SZV/DZVP basis models, S and K builders, SCF driver |
//! | [`core`] | **the submatrix method**: assembly, clustering, load balancing, µ adjustment, engine, drivers |
//! | [`pipeline`] | persistent `SubmatrixEngine` facade, `JobQueue`, distributed `Scheduler`, batched `ScfService` |
//! | [`accel`] | emulated FP16/FP32 tensor-core & FPGA kernels, Padé iteration traces, Table I model |
//! | [`trace`] | deterministic structured spans + typed metrics (the `smdoctor` CLI's substrate) |
//!
//! ## Quickstart
//!
//! ```
//! use cp2k_submatrix::prelude::*;
//!
//! // A small periodic water box with the SZV basis model.
//! let water = WaterBox::cubic(1, 42);
//! let basis = BasisSet::szv();
//! let sys = build_system(&water, &basis, 0, 1, 1e-10);
//!
//! // Löwdin-orthogonalize and purify with the submatrix method.
//! let comm = SerialComm::new();
//! let (kt, _, _) = orthogonalize_sparse(&sys.s, &sys.k, &Default::default(), &comm);
//! let (density, report) =
//!     submatrix_density(&kt, sys.mu, &SubmatrixOptions::default(), &comm);
//!
//! let n_electrons = 2.0 * sm_dbcsr::ops::trace(&density, &comm);
//! assert!((n_electrons - 8.0 * water.n_molecules() as f64).abs() < 0.5);
//! assert_eq!(report.n_submatrices, water.n_molecules());
//! ```
//!
//! ## Repeated evaluation: the engine
//!
//! The one-shot driver above replans from scratch on every call. Workloads
//! that evaluate a *fixed* sparsity pattern repeatedly — SCF and MD loops,
//! batched services — should hold a [`SubmatrixEngine`](prelude::SubmatrixEngine),
//! which splits each
//! evaluation into a one-time cached **symbolic phase** (plan, load
//! balance, deduplicated transfers, assembly/extraction index maps, keyed
//! by a pattern fingerprint) and a cheap per-call **numeric phase**:
//!
//! ```
//! use cp2k_submatrix::prelude::*;
//!
//! let water = WaterBox::cubic(1, 42);
//! let sys = build_system(&water, &BasisSet::szv(), 0, 1, 1e-10);
//! let comm = SerialComm::new();
//! let (kt, _, _) = orthogonalize_sparse(&sys.s, &sys.k, &Default::default(), &comm);
//!
//! let engine = SubmatrixEngine::default();
//! let plan = engine.plan_for_matrix(&kt, &comm);       // symbolic, once
//! let (sign, _) = engine.execute(&plan, &kt, sys.mu,   // numeric, per call
//!                                &NumericOptions::default(), &comm);
//! assert_eq!(engine.stats().symbolic_builds, 1);
//! # let _ = sign;
//! ```
//!
//! `sm_chem::ScfDriver` runs a damped SCF loop on one cached plan, and
//! [`pipeline`]'s `JobQueue` batches many mixed jobs over a shared engine.
//!
//! ## Scaling out: scheduler and SCF service
//!
//! [`pipeline`]'s `Scheduler` distributes a batch over a simulated rank
//! world — per-job subcommunicator groups sized by estimated cost, with
//! epoch-based work stealing — and `ScfService` lifts that to whole
//! chemical systems: each job a multi-iteration SCF loop, all sharing one
//! bounded plan cache. See `examples/scheduler_batch.rs` and
//! `examples/scf_service_batch.rs` for worked walkthroughs, and
//! `ARCHITECTURE.md` for the invariants that keep every path
//! bitwise-equivalent to its serial baseline.

pub use sm_accel as accel;
pub use sm_chem as chem;
pub use sm_comsim as comsim;
pub use sm_core as core;
pub use sm_dbcsr as dbcsr;
pub use sm_linalg as linalg;
pub use sm_pipeline as pipeline;
pub use sm_trace as trace;

/// Everything a typical application needs in scope.
pub mod prelude {
    pub use sm_chem::builder::{build_system, molecular_gap, molecular_mu};
    pub use sm_chem::{
        BasisKind, BasisSet, ScfDriver, ScfEnsemble, ScfOptions, SystemMatrices, WaterBox,
    };
    pub use sm_comsim::{run_ranks, ClusterModel, Comm, SerialComm};
    pub use sm_core::baseline::{newton_schulz_density, orthogonalize_sparse, NewtonSchulzOptions};
    pub use sm_core::engine::{
        EngineOptions, EngineReport, EngineStats, ExecutionPlan, NumericOptions, SubmatrixEngine,
    };
    pub use sm_core::method::{Ensemble, Grouping};
    pub use sm_core::solver::SolveOptions;
    pub use sm_core::{
        submatrix_density, submatrix_sign, SignMethod, SubmatrixOptions, SubmatrixPlan,
    };
    pub use sm_dbcsr::{BlockedDims, CooPattern, DbcsrMatrix, PatternFingerprint};
    pub use sm_linalg::Matrix;
    pub use sm_pipeline::{
        BatchJob, EpochSchedule, JobOutput, JobQueue, JobResult, MatrixJob, RankBudget, ScfJobSpec,
        ScfService, ScfTelemetry, SchedulePlan, Scheduler, SchedulerOutcome, StealPolicy,
        StealStats,
    };
}
