//! # cp2k-submatrix — reproduction of the submatrix method (Lass et al., SC 2020)
//!
//! A from-scratch Rust implementation of *"A Submatrix-Based Method for
//! Approximate Matrix Function Evaluation in the Quantum Chemistry Code
//! CP2K"*, including every substrate the paper builds on:
//!
//! | Crate | Role |
//! |---|---|
//! | [`linalg`] | dense BLAS/LAPACK subset: GEMM, symmetric eigensolver, sign function, inverse roots |
//! | [`comsim`] | simulated MPI: rank-per-thread communicator + analytic cluster-time model |
//! | [`dbcsr`] | distributed block-compressed sparse matrices with Cannon multiplication (libDBCSR) |
//! | [`chem`] | synthetic liquid-water systems, SZV/DZVP basis models, S and K builders |
//! | [`core`] | **the submatrix method**: assembly, clustering, load balancing, µ adjustment, drivers |
//! | [`accel`] | emulated FP16/FP32 tensor-core & FPGA kernels, Padé iteration traces, Table I model |
//!
//! ## Quickstart
//!
//! ```
//! use cp2k_submatrix::prelude::*;
//!
//! // A small periodic water box with the SZV basis model.
//! let water = WaterBox::cubic(1, 42);
//! let basis = BasisSet::szv();
//! let sys = build_system(&water, &basis, 0, 1, 1e-10);
//!
//! // Löwdin-orthogonalize and purify with the submatrix method.
//! let comm = SerialComm::new();
//! let (kt, _, _) = orthogonalize_sparse(&sys.s, &sys.k, &Default::default(), &comm);
//! let (density, report) =
//!     submatrix_density(&kt, sys.mu, &SubmatrixOptions::default(), &comm);
//!
//! let n_electrons = 2.0 * sm_dbcsr::ops::trace(&density, &comm);
//! assert!((n_electrons - 8.0 * water.n_molecules() as f64).abs() < 0.5);
//! assert_eq!(report.n_submatrices, water.n_molecules());
//! ```

pub use sm_accel as accel;
pub use sm_chem as chem;
pub use sm_comsim as comsim;
pub use sm_core as core;
pub use sm_dbcsr as dbcsr;
pub use sm_linalg as linalg;

/// Everything a typical application needs in scope.
pub mod prelude {
    pub use sm_chem::builder::{build_system, molecular_gap, molecular_mu};
    pub use sm_chem::{BasisKind, BasisSet, SystemMatrices, WaterBox};
    pub use sm_comsim::{run_ranks, ClusterModel, Comm, SerialComm};
    pub use sm_core::baseline::{
        newton_schulz_density, orthogonalize_sparse, NewtonSchulzOptions,
    };
    pub use sm_core::method::{Ensemble, Grouping};
    pub use sm_core::solver::SolveOptions;
    pub use sm_core::{
        submatrix_density, submatrix_sign, SignMethod, SubmatrixOptions, SubmatrixPlan,
    };
    pub use sm_dbcsr::{BlockedDims, CooPattern, DbcsrMatrix};
    pub use sm_linalg::Matrix;
}
