//! Distributed-equivalence integration tests: every collective pipeline
//! stage must produce bitwise-identical (or tolerance-identical) results on
//! 1, 4 and 9 simulated ranks.

use cp2k_submatrix::prelude::*;

fn serial_reference() -> (WaterBox, BasisSet, sm_linalg::Matrix, f64) {
    let water = WaterBox::cubic(1, 42);
    let basis = BasisSet::szv();
    let comm = SerialComm::new();
    let sys = build_system(&water, &basis, 0, 1, 1e-10);
    let (kt, _, _) = orthogonalize_sparse(
        &sys.s,
        &sys.k,
        &NewtonSchulzOptions {
            eps_filter: 1e-12,
            max_iter: 200,
        },
        &comm,
    );
    let dense = kt.to_dense(&comm);
    (water, basis, dense, sys.mu)
}

#[test]
fn orthogonalization_is_rank_count_invariant() {
    let (water, basis, kt_ref, _) = serial_reference();
    for ranks in [4usize, 9] {
        let (results, _) = run_ranks(ranks, |c| {
            let sys = build_system(&water, &basis, c.rank(), c.size(), 1e-10);
            let (kt, _, _) = orthogonalize_sparse(
                &sys.s,
                &sys.k,
                &NewtonSchulzOptions {
                    eps_filter: 1e-12,
                    max_iter: 200,
                },
                c,
            );
            kt.to_dense(c)
        });
        for r in results {
            assert!(
                r.allclose(&kt_ref, 1e-11),
                "orthogonalization differs on {ranks} ranks"
            );
        }
    }
}

#[test]
fn submatrix_density_is_rank_count_invariant() {
    let (water, basis, _, mu) = serial_reference();
    let comm = SerialComm::new();
    let d_ref = {
        let sys = build_system(&water, &basis, 0, 1, 1e-10);
        let (kt, _, _) = orthogonalize_sparse(
            &sys.s,
            &sys.k,
            &NewtonSchulzOptions {
                eps_filter: 1e-12,
                max_iter: 200,
            },
            &comm,
        );
        submatrix_density(&kt, mu, &SubmatrixOptions::default(), &comm)
            .0
            .to_dense(&comm)
    };
    let (results, _) = run_ranks(4, |c| {
        let sys = build_system(&water, &basis, c.rank(), c.size(), 1e-10);
        let (kt, _, _) = orthogonalize_sparse(
            &sys.s,
            &sys.k,
            &NewtonSchulzOptions {
                eps_filter: 1e-12,
                max_iter: 200,
            },
            c,
        );
        submatrix_density(&kt, mu, &SubmatrixOptions::default(), c)
            .0
            .to_dense(c)
    });
    for r in results {
        assert!(r.allclose(&d_ref, 1e-10), "distributed density deviates");
    }
}

#[test]
fn canonical_mu_is_rank_count_invariant() {
    let (water, basis, _, mu0) = serial_reference();
    let target = 8.0 * water.n_molecules() as f64 - 4.0;
    let opts = SubmatrixOptions {
        ensemble: Ensemble::Canonical {
            n_electrons: target,
            tol: 1e-8,
            max_iter: 200,
        },
        solve: SolveOptions {
            kt: 0.02,
            ..SolveOptions::default()
        },
        ..Default::default()
    };
    let comm = SerialComm::new();
    let mu_serial = {
        let sys = build_system(&water, &basis, 0, 1, 1e-10);
        let (kt, _, _) = orthogonalize_sparse(
            &sys.s,
            &sys.k,
            &NewtonSchulzOptions {
                eps_filter: 1e-12,
                max_iter: 200,
            },
            &comm,
        );
        submatrix_density(&kt, mu0, &opts, &comm).1.mu
    };
    let opts_ref = &opts;
    let (results, _) = run_ranks(4, move |c| {
        let sys = build_system(&water, &basis, c.rank(), c.size(), 1e-10);
        let (kt, _, _) = orthogonalize_sparse(
            &sys.s,
            &sys.k,
            &NewtonSchulzOptions {
                eps_filter: 1e-12,
                max_iter: 200,
            },
            c,
        );
        submatrix_density(&kt, mu0, opts_ref, c).1.mu
    });
    for mu in results {
        assert!(
            (mu - mu_serial).abs() < 1e-10,
            "rank-dependent canonical mu: {mu} vs {mu_serial}"
        );
    }
}

#[test]
fn transfer_accounting_shows_deduplication_in_flight() {
    // The distributed run's actual byte traffic stays below what naive
    // per-submatrix transfers would require.
    let (water, basis, _, mu) = serial_reference();
    let (reports, stats) = run_ranks(4, |c| {
        let sys = build_system(&water, &basis, c.rank(), c.size(), 1e-10);
        let (kt, _, _) = orthogonalize_sparse(
            &sys.s,
            &sys.k,
            &NewtonSchulzOptions {
                eps_filter: 1e-12,
                max_iter: 200,
            },
            c,
        );
        // Zero the counters so only the submatrix-method phase is measured
        // (system build and orthogonalization traffic excluded).
        c.barrier();
        if c.rank() == 0 {
            c.stats().reset();
        }
        c.barrier();
        submatrix_density(&kt, mu, &SubmatrixOptions::default(), c).1
    });
    let wire_bytes = stats.total_bytes();
    let naive_bytes: u64 = reports.iter().map(|r| r.transfers.naive_bytes).sum();
    assert!(
        wire_bytes < naive_bytes,
        "wire traffic {wire_bytes} should undercut naive estimate {naive_bytes}"
    );
    for r in &reports {
        assert!(r.transfers.dedup_factor() > 1.0);
    }
}

#[test]
fn newton_schulz_baseline_is_rank_count_invariant() {
    let (water, basis, _, mu) = serial_reference();
    let comm = SerialComm::new();
    let opts = NewtonSchulzOptions {
        eps_filter: 1e-10,
        max_iter: 200,
    };
    let d_ref = {
        let sys = build_system(&water, &basis, 0, 1, 1e-10);
        let (kt, _, _) = orthogonalize_sparse(&sys.s, &sys.k, &opts, &comm);
        newton_schulz_density(&kt, mu, &opts, &comm)
            .0
            .to_dense(&comm)
    };
    let (results, _) = run_ranks(4, |c| {
        let sys = build_system(&water, &basis, c.rank(), c.size(), 1e-10);
        let (kt, _, _) = orthogonalize_sparse(&sys.s, &sys.k, &opts, c);
        newton_schulz_density(&kt, mu, &opts, c).0.to_dense(c)
    });
    for r in results {
        assert!(r.allclose(&d_ref, 1e-9));
    }
}
