//! Fast shape assertions of the paper's headline claims, evaluated on
//! pattern-level workloads (no heavy solving): these are the regression
//! gates for the evaluation figures.

use sm_chem::builder::block_pattern;
use sm_chem::{BasisSet, WaterBox};
use sm_comsim::ClusterModel;
use sm_core::model::{model_newton_schulz_run, model_submatrix_run, ns_iteration_estimate};
use sm_core::SubmatrixPlan;
use sm_dbcsr::BlockedDims;

fn plan_for(nrep: usize, eps: f64) -> (SubmatrixPlan, sm_dbcsr::CooPattern, BlockedDims) {
    let water = WaterBox::cubic(nrep, 42);
    let basis = BasisSet::szv();
    let pattern = block_pattern(&water, &basis, eps, 1.0);
    let dims = BlockedDims::uniform(water.n_molecules(), basis.n_per_molecule());
    let plan = SubmatrixPlan::one_per_column(&pattern, &dims);
    (plan, pattern, dims)
}

#[test]
fn claim_linear_scaling_regime_exists() {
    // Paper Fig. 4: submatrix dimension becomes size-independent.
    let (p3, _, _) = plan_for(3, 1e-5);
    let (p4, _, _) = plan_for(4, 1e-5);
    let (p5, _, _) = plan_for(5, 1e-5);
    assert_eq!(p4.max_dim(), p5.max_dim(), "dim(SM) must saturate");
    assert!((p3.avg_dim() - p5.avg_dim()).abs() / p5.avg_dim() < 0.05);
}

#[test]
fn claim_submatrix_runtime_scales_linearly() {
    // Paper Fig. 8: modeled time ∝ atoms in the linear regime.
    let cluster = ClusterModel::paper_testbed();
    let (plan4, pat4, d4) = plan_for(4, 1e-5);
    let (plan6, pat6, d6) = plan_for(6, 1e-5);
    let t4 = model_submatrix_run(&plan4, &pat4, &d4, 80, &cluster).total();
    let t6 = model_submatrix_run(&plan6, &pat6, &d6, 80, &cluster).total();
    let time_ratio = t6 / t4;
    let size_ratio = (6.0f64 / 4.0).powi(3);
    assert!(
        (time_ratio / size_ratio - 1.0).abs() < 0.15,
        "time ratio {time_ratio} vs size ratio {size_ratio}"
    );
}

#[test]
fn claim_strong_scaling_efficiency_high() {
    // Paper Fig. 9: ≥ ~0.8 efficiency at 4x cores.
    let cluster = ClusterModel::paper_testbed();
    let (plan, pattern, dims) = plan_for(5, 1e-5);
    let t80 = model_submatrix_run(&plan, &pattern, &dims, 80, &cluster).total();
    let t320 = model_submatrix_run(&plan, &pattern, &dims, 320, &cluster).total();
    let eff = t80 * 80.0 / (t320 * 320.0);
    assert!(eff > 0.8, "strong-scaling efficiency {eff}");
}

#[test]
fn claim_weak_scaling_submatrix_beats_newton_schulz() {
    // Paper Fig. 10: the submatrix method's weak-scaling efficiency stays
    // above Newton–Schulz's.
    let cluster = ClusterModel::paper_testbed();
    let basis = BasisSet::szv();
    let iters = ns_iteration_estimate(0.05, 1e-5);
    let mut sm_eff = Vec::new();
    let mut ns_eff = Vec::new();
    let mut sm_base = 0.0;
    let mut ns_base = 0.0;
    for (step, nx) in [1usize, 4, 16].into_iter().enumerate() {
        let water = WaterBox::elongated(3, nx, 42);
        let cores = 40 * nx;
        let pattern = block_pattern(&water, &basis, 1e-5, 1.0);
        let dims = BlockedDims::uniform(water.n_molecules(), basis.n_per_molecule());
        let plan = SubmatrixPlan::one_per_column(&pattern, &dims);
        let t_sm = model_submatrix_run(&plan, &pattern, &dims, cores, &cluster).total();
        let t_ns = model_newton_schulz_run(&pattern, &dims, cores, 5, iters, 2.0, &cluster).total();
        if step == 0 {
            sm_base = t_sm;
            ns_base = t_ns;
        }
        sm_eff.push(sm_base / t_sm);
        ns_eff.push(ns_base / t_ns);
    }
    assert!(
        sm_eff.last().unwrap() > ns_eff.last().unwrap(),
        "submatrix weak-scaling efficiency {:?} must beat NS {:?}",
        sm_eff,
        ns_eff
    );
    assert!(ns_eff.last().unwrap() < &0.95, "NS must visibly degrade");
}

#[test]
fn claim_method_advantage_grows_with_sparsity() {
    // Paper Fig. 6's monotone trend: SM/NS modeled-time ratio falls as the
    // filter loosens (pattern thins).
    let cluster = ClusterModel::paper_testbed();
    let mut prev_ratio = f64::INFINITY;
    for eps in [1e-7, 1e-5, 1e-3] {
        let (plan, pattern, dims) = plan_for(4, eps);
        let iters = ns_iteration_estimate(0.05, eps);
        let t_sm = model_submatrix_run(&plan, &pattern, &dims, 80, &cluster).total();
        let t_ns = model_newton_schulz_run(&pattern, &dims, 80, 5, iters, 2.0, &cluster).total();
        let ratio = t_sm / t_ns;
        assert!(
            ratio < prev_ratio * 1.05,
            "SM/NS ratio must trend down with sparsity: {ratio} after {prev_ratio}"
        );
        prev_ratio = ratio;
    }
    // At the loosest filter the submatrix method wins outright.
    assert!(
        prev_ratio < 1.0,
        "SM must win on sparse patterns: {prev_ratio}"
    );
}

#[test]
fn claim_dzvp_submatrices_larger_than_szv() {
    // Paper Fig. 4's basis-set ordering.
    let water = WaterBox::cubic(3, 42);
    let szv = BasisSet::szv();
    let dzvp = BasisSet::dzvp();
    let p_szv = block_pattern(&water, &szv, 1e-5, 1.0);
    let p_dzvp = block_pattern(&water, &dzvp, 1e-5, 1.0);
    let plan_szv = SubmatrixPlan::one_per_column(
        &p_szv,
        &BlockedDims::uniform(water.n_molecules(), szv.n_per_molecule()),
    );
    let plan_dzvp = SubmatrixPlan::one_per_column(
        &p_dzvp,
        &BlockedDims::uniform(water.n_molecules(), dzvp.n_per_molecule()),
    );
    assert!(plan_dzvp.avg_dim() > 2.0 * plan_szv.avg_dim());
}
