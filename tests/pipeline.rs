//! End-to-end integration tests: water box → S, K → Löwdin
//! orthogonalization → purification → observables, cross-checking the
//! submatrix method against the dense reference and the Newton–Schulz
//! baseline (the paper's Sec. V workflow at laptop scale).

use cp2k_submatrix::prelude::*;
use sm_chem::energy::{band_energy, electron_count, error_mev_per_atom};
use sm_chem::reference::DenseReference;

fn setup(nrep: usize, range_scale: f64, eps: f64) -> (WaterBox, SystemMatrices, DbcsrMatrix, f64) {
    let water = WaterBox::cubic(nrep, 42);
    let basis = BasisSet::szv().with_range_scale(range_scale);
    let comm = SerialComm::new();
    let sys = build_system(&water, &basis, 0, 1, 1e-11);
    let (mut kt, _, report) = orthogonalize_sparse(
        &sys.s,
        &sys.k,
        &NewtonSchulzOptions {
            eps_filter: 1e-12,
            max_iter: 200,
        },
        &comm,
    );
    assert!(report.converged);
    kt.store_mut().filter(eps);
    let mu = sys.mu;
    (water, sys, kt, mu)
}

#[test]
fn full_pipeline_matches_dense_reference() {
    let (water, _, kt, mu) = setup(1, 1.0, 1e-9);
    let comm = SerialComm::new();

    let (d, report) = submatrix_density(&kt, mu, &SubmatrixOptions::default(), &comm);
    let e = band_energy(&d, &kt, &comm);
    let n = electron_count(&d, &comm);

    let kt_dense = kt.to_dense(&comm);
    let reference = DenseReference::new(&kt_dense).expect("symmetric");
    let e_ref = reference.band_energy(mu);
    let n_ref = reference.electron_count(mu, 0.0);

    assert!((n - n_ref).abs() < 1e-6, "electron count {n} vs {n_ref}");
    let err = error_mev_per_atom(e, e_ref, water.n_atoms());
    assert!(err < 1.0, "energy error {err} meV/atom too large");
    assert_eq!(report.n_submatrices, water.n_molecules());
}

#[test]
fn submatrix_and_newton_schulz_agree() {
    let (water, _, kt, mu) = setup(2, 0.55, 1e-7);
    let comm = SerialComm::new();

    let (d_sm, _) = submatrix_density(&kt, mu, &SubmatrixOptions::default(), &comm);
    let (d_ns, ns_report) = newton_schulz_density(
        &kt,
        mu,
        &NewtonSchulzOptions {
            eps_filter: 1e-9,
            max_iter: 200,
        },
        &comm,
    );
    assert!(ns_report.converged);

    let e_sm = band_energy(&d_sm, &kt, &comm);
    let e_ns = band_energy(&d_ns, &kt, &comm);
    let err = error_mev_per_atom(e_sm, e_ns, water.n_atoms());
    assert!(err < 0.5, "methods disagree by {err} meV/atom");

    // Electron counts agree too.
    let n_sm = electron_count(&d_sm, &comm);
    let n_ns = electron_count(&d_ns, &comm);
    assert!((n_sm - n_ns).abs() < 0.01, "{n_sm} vs {n_ns}");
}

#[test]
fn density_from_submatrix_method_is_nearly_idempotent() {
    let (_, _, kt, mu) = setup(2, 0.55, 1e-8);
    let comm = SerialComm::new();
    let (d, _) = submatrix_density(&kt, mu, &SubmatrixOptions::default(), &comm);
    let dd = d.to_dense(&comm);
    let d2 = sm_linalg::gemm::matmul(&dd, &dd).expect("square");
    // D² ≈ D within the submatrix-method approximation error.
    let dev = d2.max_abs_diff(&dd);
    assert!(dev < 0.05, "idempotency deviation {dev}");
}

#[test]
fn error_decreases_with_tighter_filter() {
    let comm = SerialComm::new();
    let (water, _, kt_raw, mu) = setup(2, 0.55, 1e-11);
    // Reference at the tightest filter.
    let (d_ref, _) = submatrix_density(&kt_raw, mu, &SubmatrixOptions::default(), &comm);
    let e_ref = band_energy(&d_ref, &kt_raw, &comm);

    let mut errors = Vec::new();
    for eps in [1e-3, 1e-5, 1e-7] {
        let mut kt = kt_raw.clone();
        kt.store_mut().filter(eps);
        let (d, _) = submatrix_density(&kt, mu, &SubmatrixOptions::default(), &comm);
        let e = band_energy(&d, &kt_raw, &comm);
        errors.push(error_mev_per_atom(e, e_ref, water.n_atoms()));
    }
    assert!(
        errors[0] > errors[2],
        "tighter filter must reduce the error: {errors:?}"
    );
}

#[test]
fn canonical_run_matches_grand_canonical_at_neutral_filling() {
    let (water, _, kt, mu) = setup(1, 1.0, 1e-9);
    let comm = SerialComm::new();
    let target = 8.0 * water.n_molecules() as f64;

    let (d_gc, _) = submatrix_density(&kt, mu, &SubmatrixOptions::default(), &comm);
    let opts = SubmatrixOptions {
        ensemble: Ensemble::Canonical {
            n_electrons: target,
            tol: 1e-9,
            max_iter: 200,
        },
        ..Default::default()
    };
    let (d_c, report) = submatrix_density(&kt, mu, &opts, &comm);

    // Same filling ⇒ same density (µ anywhere in the gap gives the same D).
    let diff = d_gc.to_dense(&comm).max_abs_diff(&d_c.to_dense(&comm));
    assert!(diff < 1e-9, "canonical/grand-canonical mismatch {diff}");
    assert!((electron_count(&d_c, &comm) - target).abs() < 1e-6);
    assert!(report.mu.is_finite());
}

#[test]
fn finite_temperature_pipeline_increases_entropy_like_smearing() {
    let (_, _, kt, mu) = setup(1, 1.0, 1e-9);
    let comm = SerialComm::new();
    let (d_cold, _) = submatrix_density(&kt, mu, &SubmatrixOptions::default(), &comm);
    let opts_hot = SubmatrixOptions {
        solve: SolveOptions {
            kt: 0.05,
            ..SolveOptions::default()
        },
        ..Default::default()
    };
    let (d_hot, _) = submatrix_density(&kt, mu, &opts_hot, &comm);
    // Warm density has strictly smaller idempotency (fractional
    // occupations) but an almost unchanged trace.
    let cold_dense = d_cold.to_dense(&comm);
    let hot_dense = d_hot.to_dense(&comm);
    let cold_gap = {
        let d2 = sm_linalg::gemm::matmul(&cold_dense, &cold_dense).expect("square");
        sm_linalg::norms::fro_norm(&d2.sub(&cold_dense).expect("shape"))
    };
    let hot_gap = {
        let d2 = sm_linalg::gemm::matmul(&hot_dense, &hot_dense).expect("square");
        sm_linalg::norms::fro_norm(&d2.sub(&hot_dense).expect("shape"))
    };
    assert!(hot_gap > cold_gap, "smearing must break idempotency");
    assert!((cold_dense.trace() - hot_dense.trace()).abs() < 0.5);
}

#[test]
fn grouping_strategies_all_conserve_electrons() {
    let (water, _, kt, mu) = setup(2, 0.55, 1e-6);
    let comm = SerialComm::new();
    let expected = 8.0 * water.n_molecules() as f64;
    for grouping in [
        Grouping::OnePerColumn,
        Grouping::Consecutive(4),
        Grouping::Consecutive(32),
    ] {
        let opts = SubmatrixOptions {
            grouping: grouping.clone(),
            ..Default::default()
        };
        let (d, _) = submatrix_density(&kt, mu, &opts, &comm);
        let n = electron_count(&d, &comm);
        assert!(
            (n - expected).abs() < 0.1,
            "{grouping:?}: electron count {n} vs {expected}"
        );
    }
}
