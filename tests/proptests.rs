//! Cross-crate property-based tests (proptest): randomized invariants of
//! the numerical core and the submatrix machinery.

use proptest::prelude::*;

use cp2k_submatrix::prelude::*;
use sm_core::assembly::{assemble, extract_result, SubmatrixSpec};
use sm_core::loadbalance::greedy_contiguous;
use sm_linalg::gemm::{matmul, matmul_naive};
use sm_linalg::Matrix;

/// Random symmetric matrix with entries in [-1, 1] and a diagonal shifted
/// away from zero so sign functions stay well conditioned.
fn symmetric_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut m = Matrix::from_col_major(n, n, data);
        m.symmetrize();
        for i in 0..n {
            let d = m[(i, i)];
            m[(i, i)] = d.signum().clamp(-1.0, 1.0) * (d.abs() + 1.5);
        }
        m
    })
}

/// Random banded symmetric block pattern (always includes the diagonal).
fn banded_pattern(nb: usize, half: usize) -> CooPattern {
    let mut coords = Vec::new();
    for i in 0..nb {
        for j in i.saturating_sub(half)..(i + half + 1).min(nb) {
            coords.push((i, j));
        }
    }
    CooPattern::from_coords(coords, nb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gemm_matches_naive_reference(
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        let a = Matrix::from_fn(m, k, |i, j| {
            (((i * 31 + j * 17 + seed as usize) % 23) as f64 - 11.0) * 0.1
        });
        let b = Matrix::from_fn(k, n, |i, j| {
            (((i * 13 + j * 29 + seed as usize) % 19) as f64 - 9.0) * 0.1
        });
        let fast = matmul(&a, &b).expect("shapes");
        let slow = matmul_naive(&a, &b).expect("shapes");
        prop_assert!(fast.allclose(&slow, 1e-12));
    }

    #[test]
    fn eigh_reconstructs_and_orthonormal(a in symmetric_matrix(7)) {
        let dec = sm_linalg::eigh::eigh(&a).expect("symmetric");
        let back = dec.apply(|l| l);
        prop_assert!(back.allclose(&a, 1e-9));
        let qtq = sm_linalg::gemm::matmul_tn(&dec.eigenvectors, &dec.eigenvectors)
            .expect("square");
        prop_assert!(qtq.allclose(&Matrix::identity(7), 1e-10));
        // Eigenvalues sorted.
        for w in dec.eigenvalues.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn sign_function_is_involutory_and_commutes(a in symmetric_matrix(6)) {
        let s = sm_linalg::sign::sign_eig(&a).expect("symmetric");
        let s2 = matmul(&s, &s).expect("square");
        prop_assert!(s2.allclose(&Matrix::identity(6), 1e-8));
        let as_ = matmul(&a, &s).expect("square");
        let sa = matmul(&s, &a).expect("square");
        prop_assert!(as_.allclose(&sa, 1e-8));
    }

    #[test]
    fn newton_schulz_sign_matches_eig(a in symmetric_matrix(6)) {
        let s_ref = sm_linalg::sign::sign_eig(&a).expect("symmetric");
        let r = sm_linalg::sign::newton_schulz_sign(&a, Default::default())
            .expect("square");
        prop_assert!(r.converged);
        prop_assert!(r.sign.allclose(&s_ref, 1e-6));
    }

    #[test]
    fn dbcsr_roundtrip_preserves_matrix(
        nb in 1usize..6,
        bs in 1usize..4,
        seed in 0u64..100,
    ) {
        let dims = BlockedDims::uniform(nb, bs);
        let n = dims.n();
        let dense = Matrix::from_fn(n, n, |i, j| {
            (((i * 7 + j * 3 + seed as usize) % 11) as f64 - 5.0) * 0.2
        });
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        prop_assert!(m.to_dense(&comm).allclose(&dense, 0.0));
    }

    #[test]
    fn dbcsr_multiply_matches_dense(
        nb in 1usize..5,
        bs in 1usize..4,
        seed in 0u64..100,
    ) {
        let dims = BlockedDims::uniform(nb, bs);
        let n = dims.n();
        let da = Matrix::from_fn(n, n, |i, j| {
            (((i * 5 + j * 11 + seed as usize) % 13) as f64 - 6.0) * 0.15
        });
        let db = Matrix::from_fn(n, n, |i, j| {
            (((i * 3 + j * 7 + seed as usize) % 17) as f64 - 8.0) * 0.1
        });
        let comm = SerialComm::new();
        let a = DbcsrMatrix::from_dense(&da, dims.clone(), 0, 1, 0.0);
        let b = DbcsrMatrix::from_dense(&db, dims, 0, 1, 0.0);
        let (c, _) = sm_dbcsr::multiply::multiply(&a, &b, &comm, None).expect("serial multiply");
        let expect = matmul(&da, &db).expect("shapes");
        prop_assert!(c.to_dense(&comm).allclose(&expect, 1e-11));
    }

    #[test]
    fn assembly_extract_identity_roundtrip(
        nb in 2usize..8,
        half in 0usize..3,
        col in 0usize..8,
    ) {
        let col = col % nb;
        let pattern = banded_pattern(nb, half);
        let dims = BlockedDims::uniform(nb, 2);
        let spec = SubmatrixSpec::build(&pattern, &dims, &[col]);
        // Identity on the submatrix extracts identity-pattern blocks.
        let f_a = Matrix::identity(spec.dim);
        let blocks = extract_result(&spec, &pattern, &dims, &f_a);
        for ((br, bc), blk) in blocks {
            prop_assert_eq!(bc, col);
            if br == col {
                prop_assert!(blk.allclose(&Matrix::identity(2), 0.0));
            } else {
                prop_assert!(blk.allclose(&Matrix::zeros(2, 2), 0.0));
            }
        }
    }

    #[test]
    fn submatrix_method_is_exact_on_block_diagonal(
        nb in 1usize..6,
        bs in 1usize..4,
        seed in 0u64..50,
    ) {
        let dims = BlockedDims::uniform(nb, bs);
        let n = dims.n();
        let mut dense = Matrix::zeros(n, n);
        for b in 0..nb {
            for i in 0..bs {
                for j in 0..bs {
                    let v = if i == j {
                        if (b + i + seed as usize).is_multiple_of(2) { 2.0 } else { -2.0 }
                    } else {
                        0.15
                    };
                    dense[(b * bs + i, b * bs + j)] = v;
                }
            }
        }
        dense.symmetrize();
        let comm = SerialComm::new();
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let (sign, _) = submatrix_sign(&m, 0.0, &SubmatrixOptions::default(), &comm);
        let expect = sm_linalg::sign::sign_eig(&dense).expect("symmetric");
        prop_assert!(sign.to_dense(&comm).allclose(&expect, 1e-9));
    }

    #[test]
    fn load_balance_covers_all_and_bounds_imbalance(
        n_items in 1usize..200,
        n_ranks in 1usize..32,
        seed in 0u64..100,
    ) {
        let costs: Vec<f64> = (0..n_items)
            .map(|i| 1.0 + ((i as u64 * 31 + seed) % 17) as f64)
            .collect();
        let a = greedy_contiguous(&costs, n_ranks);
        // Partition property.
        let mut expect_start = 0usize;
        for r in &a.ranges {
            prop_assert_eq!(r.start, expect_start);
            expect_start = r.end;
        }
        prop_assert_eq!(expect_start, n_items);
        // No rank exceeds target + max item.
        let total: f64 = costs.iter().sum();
        let target = total / n_ranks as f64;
        let max_item = costs.iter().fold(0.0f64, |m, &c| m.max(c));
        for load in a.loads(&costs) {
            prop_assert!(load <= target + max_item + 1e-9);
        }
    }

    #[test]
    fn assembled_submatrix_is_principal_minor(
        nb in 2usize..6,
        half in 1usize..3,
        seed in 0u64..50,
    ) {
        let pattern = banded_pattern(nb, half);
        let dims = BlockedDims::uniform(nb, 2);
        let n = dims.n();
        // Build a matrix whose nonzeros exactly follow the pattern.
        let mut dense = Matrix::zeros(n, n);
        for &(br, bc) in pattern.entries() {
            for i in 0..2 {
                for j in 0..2 {
                    dense[(br * 2 + i, bc * 2 + j)] =
                        ((br * 31 + bc * 7 + i * 3 + j + seed as usize) % 9) as f64 * 0.1;
                }
            }
        }
        let m = DbcsrMatrix::from_dense(&dense, dims.clone(), 0, 1, 0.0);
        let col = nb / 2;
        let spec = SubmatrixSpec::build(&pattern, &dims, &[col]);
        let a = assemble(&spec, &pattern, &dims, |r, c| m.block(r, c));
        // The assembled matrix equals the dense principal minor over the
        // spec's element rows wherever the pattern is nonzero.
        let idx: Vec<usize> = spec
            .rows
            .iter()
            .flat_map(|&b| dims.range(b))
            .collect();
        let minor = dense.principal_submatrix(&idx);
        for (pi, &bi) in spec.rows.iter().enumerate() {
            for (pj, &bj) in spec.rows.iter().enumerate() {
                if pattern.id_of(bi, bj).is_some() {
                    for i in 0..2 {
                        for j in 0..2 {
                            let (r, c) = (pi * 2 + i, pj * 2 + j);
                            prop_assert_eq!(a[(r, c)], minor[(r, c)]);
                        }
                    }
                }
            }
        }
    }
}
